"""Integration: autotuning decisions validated against execution.

The loop the paper motivates: measure -> report -> optimize -> win.
The placement test executes the application on the simulated MPI
runtime, so the optimizer (which saw only the report) is validated
against "reality".
"""

import numpy as np
import pytest

from repro.autotune import Advisor, compact_placement, scatter_placement
from repro.netsim import default_comm_config
from repro.simmpi import World
from repro.topology import Cluster, dunnington, finis_terrae
from repro.units import KiB


def ring_matrix(n):
    m = np.zeros((n, n))
    for i in range(n - 1):
        m[i, i + 1] = m[i + 1, i] = 1.0
    return m


def execute_ring(cluster, placement, nbytes, iterations=20):
    world = World(cluster, default_comm_config(cluster), placement)

    def prog(rank):
        for it in range(iterations):
            for nb in (rank.id + 1, rank.id - 1):
                if not (0 <= nb < rank.size):
                    continue
                if rank.id % 2 == 0:
                    yield rank.send(nb, nbytes, tag=it)
                    yield rank.recv(nb, tag=it)
                else:
                    yield rank.recv(nb, tag=it)
                    yield rank.send(nb, nbytes, tag=it)

    world.spawn_all(prog)
    return world.run().makespan


class TestPlacementOnDunnington:
    @pytest.fixture(scope="class")
    def setup(self, dunnington_report):
        cluster = Cluster("dunnington", dunnington())
        advisor = Advisor(dunnington_report)
        return cluster, advisor

    def test_optimizer_beats_compact_in_model_and_execution(self, setup):
        cluster, advisor = setup
        n = 12
        matrix = ring_matrix(n)
        result = advisor.place(matrix, message_size=32 * KiB)
        assert result.cost < result.baseline_cost  # model says better

        compact_time = execute_ring(cluster, compact_placement(n), 32 * KiB)
        optimized_time = execute_ring(cluster, result.placement, 32 * KiB)
        assert optimized_time < compact_time  # execution agrees

    def test_optimized_placement_uses_l2_pairs(self, setup):
        cluster, advisor = setup
        matrix = ring_matrix(4)
        result = advisor.place(matrix, message_size=32 * KiB)
        # At least one adjacent rank pair should sit on an L2 pair
        # (cores c and c+12) — the hidden fast links of Fig. 8a.
        l2_links = sum(
            1
            for i in range(3)
            if abs(result.placement[i] - result.placement[i + 1]) == 12
        )
        assert l2_links >= 1

    def test_scatter_is_worst(self, setup):
        cluster, advisor = setup
        n = 12
        scatter_time = execute_ring(
            cluster, scatter_placement(n, cluster.n_cores), 32 * KiB
        )
        compact_time = execute_ring(cluster, compact_placement(n), 32 * KiB)
        assert scatter_time > compact_time


class TestAggregationOnFinisTerrae:
    def test_infiniband_gathering_wins(self, ft_report):
        advisor = Advisor(ft_report)
        # Cross-node traffic on the poorly scalable InfiniBand layer.
        advice = advisor.should_aggregate(0, 16, n_messages=16, message_size=16 * KiB)
        assert advice.aggregate
        # 16 separate sends pay 16 base latencies; the aggregated
        # message pays one (plus packing) — a solid two-digit% win.
        assert advice.speedup > 1.15

    def test_intra_node_gathering_matters_less(self, ft_report):
        advisor = Advisor(ft_report)
        inter = advisor.should_aggregate(0, 16, 16, 16 * KiB)
        intra = advisor.should_aggregate(0, 1, 16, 16 * KiB)
        assert inter.speedup > intra.speedup


class TestTilingUsesDetectedSizes:
    def test_tiles_fit_detected_caches(self, dunnington_report):
        advisor = Advisor(dunnington_report)
        plan = advisor.matmul_tiles(elem_size=8)
        for level, side in plan.sides.items():
            cache = next(c for c in dunnington_report.caches if c.level == level)
            assert 3 * side * side * 8 <= cache.size

    def test_streaming_core_throttle(self, dunnington_report):
        advisor = Advisor(dunnington_report)
        k = advisor.max_useful_streaming_cores()
        # Dunnington's single FSB saturates quickly: far fewer than 24
        # cores are worth using for streaming.
        assert 1 <= k <= 4
