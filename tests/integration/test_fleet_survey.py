"""End-to-end fleet survey scenarios: clean runs, fault drills,
drain/resume, and the acceptance-scale heterogeneous fleet.

All runs are discrete-event simulations under fixed seeds, so every
scenario — including crashes, stragglers, and quarantines — replays
identically.
"""

from __future__ import annotations

import json

import pytest

from repro.fleet import (
    FleetConfig,
    FleetCoordinator,
    FleetFaultPlan,
    FleetReport,
    ShardedFleetStore,
    generate_fleet,
)


def _survey(spec, tmp_path, subdir, **kwargs):
    store = ShardedFleetStore(tmp_path / subdir, shards=4)
    coordinator = FleetCoordinator(spec, store=store, **kwargs)
    return coordinator, coordinator.survey(), store


class TestFaultFreeSurvey:
    def test_all_machines_ok_or_degraded_and_deduped(self, tmp_path):
        spec = generate_fleet(12, 4, seed=11, name="clean")
        coordinator, report, store = _survey(spec, tmp_path, "store")

        assert report.complete
        assert set(report.counts) <= {"ok", "degraded"}
        assert sum(report.counts.values()) == 12
        assert report.dedup == {
            "machines": 12,
            "classes": 4,
            "measured": 4,
            "ratio": 3.0,
        }
        # Every machine maps to a status and a class report.
        assert len(report.machines) == 12
        for machine in spec.machines:
            assert report.report_for(machine.machine_id) is not None

    def test_one_registry_version_per_class(self, tmp_path):
        spec = generate_fleet(12, 4, seed=11)
        coordinator, report, store = _survey(spec, tmp_path, "store")
        entries = store.entries()
        assert len(entries) == 4  # one stored report per hardware class
        assert all(entry.version == 1 for entry in entries)
        assert len({entry.digest for entry in entries}) == 4
        # The persisted fleet report round-trips.
        loaded = FleetReport.load(store.root / "fleet_report.json")
        assert loaded.survey_dict() == report.survey_dict()

    def test_protocol_accounting_is_closed(self, tmp_path):
        spec = generate_fleet(12, 4, seed=11)
        coordinator, report, store = _survey(spec, tmp_path, "store")
        protocol = report.protocol
        assert protocol["dispatches"] == 4
        assert protocol["messages"]["RESULT"] == 4
        assert protocol["lease_expiries"] == 0
        assert protocol["duplicate_results"] == 0
        assert protocol["quarantines"] == 0


class TestFaultDrill:
    @pytest.fixture(scope="class")
    def drill(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("drill")
        spec = generate_fleet(20, 5, seed=11, name="drill")
        clean_coord, clean, _ = _survey(spec, tmp_path, "clean")
        plan = FleetFaultPlan(
            seed=3,
            crash_rate=0.25,
            respawn_seconds=200.0,
            straggler_rate=0.2,
            straggle_factor=10.0,
            flaky_machines=(spec.machines[0].machine_id,),
        )
        faulty_coord, faulty, faulty_store = _survey(
            spec, tmp_path, "faulty", fault_plan=plan
        )
        return spec, clean, faulty_coord, faulty, faulty_store

    def test_flaky_machine_quarantined_with_promotion(self, drill):
        spec, clean, coordinator, faulty, store = drill
        flaky = spec.machines[0].machine_id
        assert faulty.machines[flaky] == "quarantined"
        assert faulty.complete
        # Its class still got measured through a promoted member.
        for key, cls in faulty.classes.items():
            if flaky in cls["machines"]:
                assert cls["status"] == "measured"
                assert cls["measured_machine"] != flaky
                assert flaky in cls["quarantined_members"]
        assert faulty.counts == {"ok": 19, "quarantined": 1}
        assert faulty.protocol["quarantines"] >= 1
        assert faulty.protocol["implausible_results"] >= 1

    def test_crashes_recovered_without_double_counting(self, drill):
        spec, clean, coordinator, faulty, store = drill
        # Crashes actually happened and every one was recovered.
        crashes = sum(w.crashes for w in coordinator.workers.values())
        assert crashes >= 1
        assert faulty.protocol["lease_expiries"] >= 1
        assert faulty.protocol["reassignments"] >= 1
        # No class was ever counted twice: exactly one stored version
        # per measured class, even after reassignment and speculation.
        entries = store.entries()
        assert len(entries) == len({e.digest for e in entries}) == 5
        assert all(entry.version == 1 for entry in entries)

    def test_survivors_byte_identical_to_fault_free_run(self, drill):
        spec, clean, coordinator, faulty, store = drill
        flaky = spec.machines[0].machine_id
        clean_dict = clean.survey_dict()
        faulty_dict = faulty.survey_dict()
        # Per-machine statuses agree everywhere but the quarantined one.
        for machine_id, status in clean_dict["machines"].items():
            if machine_id != flaky:
                assert faulty_dict["machines"][machine_id] == status
        # Class reports (the measurements themselves) are byte-identical
        # at noise=0 no matter who measured them or how many retries it
        # took.
        for key, clean_cls in clean_dict["classes"].items():
            faulty_cls = faulty_dict["classes"][key]
            assert json.dumps(faulty_cls["report"], sort_keys=True) == (
                json.dumps(clean_cls["report"], sort_keys=True)
            )
            assert faulty_cls["status"] == clean_cls["status"]


class TestDrainResume:
    def test_kill_and_resume_is_byte_identical(self, tmp_path):
        spec = generate_fleet(16, 8, seed=5, name="resumable")
        config = FleetConfig(workers=2)

        # The uninterrupted reference run.
        reference = FleetCoordinator(spec, config=config).survey()
        assert reference.complete

        # Run 1: drain after two classes complete (a graceful SIGINT).
        checkpoint = tmp_path / "fleet_checkpoint.json"
        first = FleetCoordinator(spec, config=config, checkpoint=checkpoint)
        done = []

        def drain_after_two(cls):
            done.append(cls.name)
            if len(done) == 2:
                first.request_drain("simulated interrupt")

        partial = first.survey(on_class_complete=drain_after_two)
        assert not partial.complete
        assert partial.counts.get("pending", 0) > 0
        assert sum(
            v for k, v in partial.counts.items() if k != "pending"
        ) > 0
        assert checkpoint.exists()

        # Run 2: resume from the checkpoint and finish.
        second = FleetCoordinator(spec, config=config, checkpoint=checkpoint)
        resumed = second.survey(resume=True)
        assert resumed.complete
        assert json.dumps(resumed.survey_dict(), sort_keys=True) == (
            json.dumps(reference.survey_dict(), sort_keys=True)
        )
        # Only the unfinished classes were re-dispatched.
        assert resumed.protocol["dispatches"] < reference.protocol["dispatches"]

    def test_resume_without_checkpoint_fails_loudly(self, tmp_path):
        from repro.errors import FleetError

        spec = generate_fleet(4, 2, seed=5)
        coordinator = FleetCoordinator(spec)
        with pytest.raises(FleetError, match="checkpoint"):
            coordinator.survey(resume=True)

    def test_checkpoint_from_other_fleet_is_refused(self, tmp_path):
        from repro.errors import CheckpointError

        checkpoint = tmp_path / "cp.json"
        spec_a = generate_fleet(4, 2, seed=5)
        coord_a = FleetCoordinator(spec_a, checkpoint=checkpoint)
        coord_a.survey()

        spec_b = generate_fleet(4, 2, seed=6)
        coord_b = FleetCoordinator(spec_b, checkpoint=checkpoint)
        with pytest.raises(CheckpointError, match="refusing to mix"):
            coord_b.survey(resume=True)


@pytest.mark.slow
class TestAcceptanceFleet:
    """The ISSUE acceptance drill: 200 heterogeneous machines, 40
    hardware classes, >=10% worker crash rate plus stragglers."""

    @pytest.fixture(scope="class")
    def outcome(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("acceptance")
        spec = generate_fleet(200, 40, seed=7, name="acceptance")
        plan = FleetFaultPlan(
            seed=2,
            crash_rate=0.15,
            respawn_seconds=150.0,
            straggler_rate=0.1,
            straggle_factor=10.0,
        )
        store = ShardedFleetStore(tmp_path / "store", shards=8)
        coordinator = FleetCoordinator(
            spec, store=store, fault_plan=plan,
            config=FleetConfig(workers=8),
        )
        return spec, coordinator, coordinator.survey(), store

    def test_survey_completes_despite_faults(self, outcome):
        spec, coordinator, report, store = outcome
        assert report.complete
        crashes = sum(w.crashes for w in coordinator.workers.values())
        assert crashes >= 1
        assert report.protocol["lease_expiries"] >= 1
        assert report.protocol["reassignments"] >= 1

    def test_every_surviving_machine_characterized(self, outcome):
        spec, coordinator, report, store = outcome
        for machine_id, status in report.machines.items():
            if status != "quarantined":
                assert status in ("ok", "degraded"), (machine_id, status)

    def test_dedup_hits_acceptance_ratio(self, outcome):
        spec, coordinator, report, store = outcome
        assert report.dedup["classes"] <= 40
        assert report.dedup["ratio"] >= 5.0
        # The store holds one report per class, never more.
        entries = store.entries()
        assert len(entries) == report.dedup["measured"]
        assert all(entry.version == 1 for entry in entries)
