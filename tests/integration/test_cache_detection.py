"""Integration: Section IV-A — all 10 cache sizes on 4 machines.

"The benchmark presented in Section III-A was tested in these four
machines (10 cache sizes in total) and all the estimates agreed with
the specifications."  This is the paper's headline validation; we
require it across several measurement seeds.
"""

import pytest

from repro.backends import SimulatedBackend
from repro.core.cache_size import detect_caches
from repro.memsim.prefetch import PrefetchModel
from repro.topology import (
    athlon_3200,
    build_machine,
    builder_names,
    dempsey,
    dunnington,
    finis_terrae_node,
)

MACHINES = [dunnington, finis_terrae_node, dempsey, athlon_3200]


@pytest.mark.parametrize("build", MACHINES, ids=lambda b: b.__name__)
@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_all_cache_sizes_detected(build, seed):
    machine = build()
    backend = SimulatedBackend(machine, seed=seed)
    result = detect_caches(backend)
    assert result.sizes == list(machine.cache_sizes)


def test_total_cache_size_count_is_ten():
    assert sum(len(build().cache_sizes) for build in MACHINES) == 10


def test_l1_always_detected_positionally():
    for build in MACHINES:
        backend = SimulatedBackend(build(), seed=9)
        result = detect_caches(backend)
        assert result.levels[0].method == "l1-peak"


def test_detection_survives_higher_noise():
    backend = SimulatedBackend(dempsey(), seed=2, noise=0.03)
    result = detect_caches(backend)
    assert result.sizes == [16 * 1024, 2 * 1024 * 1024]


def test_small_stride_breaks_detection():
    """The paper's rationale for the 1 KB stride: a 256-byte stride is
    within prefetcher reach, the memory cliff flattens, and detection
    degrades (fails or misses levels)."""
    from repro.errors import DetectionError

    machine = dempsey()
    backend = SimulatedBackend(machine, seed=2)
    try:
        result = detect_caches(backend, stride=256)
        detected_ok = result.sizes == list(machine.cache_sizes)
    except DetectionError:
        detected_ok = False
    assert not detected_ok


def test_strong_prefetcher_would_defeat_even_1kb_stride():
    """Conversely, a (hypothetical) prefetcher tracking 2KB strides
    would break the 1 KB probe as well — the stride choice is tied to
    real prefetcher reach, not magic."""
    machine = dempsey()
    backend = SimulatedBackend(
        machine, seed=2, prefetch=PrefetchModel(max_stride=2048, coverage=0.97)
    )
    from repro.errors import DetectionError

    try:
        result = detect_caches(backend)
        full = result.sizes == list(machine.cache_sizes)
    except DetectionError:
        full = False
    assert not full


@pytest.mark.parametrize("name", builder_names())
def test_builders_by_name(name):
    machine = build_machine(name)
    assert machine.n_cores >= 1
