"""Integration: symmetry-pruned suite runs reproduce unpruned reports.

The acceptance bar for the measurement planner (ISSUE: perf_opt):

- with ``noise=0`` a ``prune="topology"`` run produces byte-identical
  *measurements* (``ServetReport.measurement_dict()``) to an unpruned
  run, on both the single-node Dunnington model and the 2-node Finis
  Terrae cluster;
- on the 32-core cluster the pruned run issues at most 20% of the
  pairwise measurements and cuts total virtual time by at least 3x;
- ``prune="verify"`` catches a machine that is less symmetric than its
  model claims (spot-check divergence) and falls back to real
  measurements.
"""

from __future__ import annotations

import json

import pytest

from repro import PlanExecutor, ServetSuite, SimulatedBackend, dunnington, finis_terrae
from repro.core.comm_costs import run_comm_costs
from repro.errors import CheckpointError
from repro.planner import PairClass
from repro.units import KiB


def run_suite(system, prune: str, seed: int = 42):
    backend = SimulatedBackend(system, seed=seed, noise=0.0)
    suite = ServetSuite(backend, prune=prune)
    report = suite.run()
    return report


@pytest.fixture(scope="module")
def dunnington_plain():
    return run_suite(dunnington(), prune="off")


@pytest.fixture(scope="module")
def dunnington_pruned():
    return run_suite(dunnington(), prune="topology")


@pytest.fixture(scope="module")
def ft2_plain():
    return run_suite(finis_terrae(2), prune="off")


@pytest.fixture(scope="module")
def ft2_pruned():
    return run_suite(finis_terrae(2), prune="topology")


def identical(a, b) -> bool:
    return json.dumps(a.measurement_dict(), sort_keys=True) == json.dumps(
        b.measurement_dict(), sort_keys=True
    )


class TestPrunedReportsMatch:
    def test_dunnington_byte_identical(self, dunnington_plain, dunnington_pruned):
        assert identical(dunnington_plain, dunnington_pruned)

    def test_ft2_byte_identical(self, ft2_plain, ft2_pruned):
        assert identical(ft2_plain, ft2_pruned)

    def test_verify_mode_also_matches(self, ft2_plain):
        verified = run_suite(finis_terrae(2), prune="verify")
        assert identical(ft2_plain, verified)
        assert verified.planner["spot_checks"] > 0
        # Message/stream spot checks agree exactly at noise=0, but
        # traversal probes sample fresh random page placements, so a
        # few shared-cache classes legitimately trip the fallback —
        # costing extra measurements, never correctness.
        assert verified.planner["verify_fallbacks"] >= 0
        assert verified.planner["pruned"] > 0

    def test_planner_accounting_in_report(self, ft2_pruned, ft2_plain):
        stats = ft2_pruned.planner
        assert stats["prune"] == "topology"
        assert stats["jobs"] == 1
        assert stats["pruned"] > 0
        assert stats["saved"] >= stats["pruned"]
        assert ft2_plain.planner["pruned"] == 0


class TestAcceptanceBudgets:
    def test_ft2_pairwise_budget(self, ft2_pruned):
        stats = ft2_pruned.planner
        assert stats["pairwise_requested"] > 0
        fraction = stats["pairwise_measured"] / stats["pairwise_requested"]
        assert fraction <= 0.20

    def test_ft2_virtual_time_cut_3x(self, ft2_plain, ft2_pruned):
        plain = sum(v for v, _ in ft2_plain.timings.values())
        pruned = sum(v for v, _ in ft2_pruned.timings.values())
        assert pruned > 0
        assert plain / pruned >= 3.0


class TestVerifyHeterogeneity:
    def test_verify_falls_back_when_model_lies(self):
        # A classifier that lumps every pair together models a machine
        # more symmetric than it really is; on Dunnington the L2-sharing
        # and cross-socket pairs differ wildly, so the spot check must
        # diverge and force real measurements of the whole class.
        class LumpEverything:
            def partition(self, pairs):
                return [PairClass(signature=("lump",), pairs=tuple(pairs))]

        # Cores 0 and 1 share an L3; core 3 sits on another socket, so
        # the lumped class's spot check (1, 3) disagrees with its
        # representative (0, 1).
        cores = [0, 1, 3]
        truth = run_comm_costs(
            SimulatedBackend(dunnington(), seed=11, noise=0.0),
            l1_size=32 * KiB,
            cores=cores,
        )
        backend = SimulatedBackend(dunnington(), seed=11, noise=0.0)
        executor = PlanExecutor(
            backend, prune="verify", classifier=LumpEverything()
        )
        result = run_comm_costs(
            backend, l1_size=32 * KiB, cores=cores, planner=executor
        )
        assert executor.stats.verify_fallbacks > 0
        assert result.pair_latencies == truth.pair_latencies
        assert [len(l.pairs) for l in result.layers] == [
            len(l.pairs) for l in truth.layers
        ]


class TestCheckpointInteraction:
    def test_fingerprint_includes_prune_mode(self, tmp_path):
        path = tmp_path / "ck.json"
        backend = SimulatedBackend(dunnington(), seed=5, noise=0.0)
        ServetSuite(backend, prune="topology").run(checkpoint=path)
        resumer = ServetSuite(
            SimulatedBackend(dunnington(), seed=5, noise=0.0), prune="off"
        )
        with pytest.raises(CheckpointError):
            resumer.run(checkpoint=path, resume=True)

    def test_resume_carries_planner_stats(self, tmp_path):
        path = tmp_path / "ck.json"
        backend = SimulatedBackend(dunnington(), seed=5, noise=0.0)
        first = ServetSuite(backend, prune="topology").run(checkpoint=path)
        # Resuming a finished run re-measures nothing but still reports
        # the whole run's planner accounting from the checkpoint.
        resumed = ServetSuite(
            SimulatedBackend(dunnington(), seed=5, noise=0.0), prune="topology"
        ).run(checkpoint=path, resume=True)
        for key in ("issued", "pruned", "cache_hits", "pairwise_measured"):
            assert resumed.planner[key] == first.planner[key]
