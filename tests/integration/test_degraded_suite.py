"""Acceptance scenarios for resilient suite execution (ISSUE 1).

- With a seeded transient-fault plan (5% NaN readings) the hardened,
  lenient suite completes and detects the *same cache sizes* as the
  fault-free run on dunnington, with affected phases at worst marked
  ``degraded``.
- With a persistent dead-phase fault the suite still emits a partial
  report (that phase ``failed``, downstream fallbacks applied), while
  ``strict=True`` preserves the historical raise-loudly behavior.
"""

import pytest

from repro import (
    FaultInjectingBackend,
    FaultPlan,
    HardenedBackend,
    ResiliencePolicy,
    RetryPolicy,
    ServetSuite,
    SimulatedBackend,
    dunnington,
)
from repro.core.suite import COMM_PROBE_FALLBACK
from repro.errors import ReproError
from repro.units import KiB


def hardened(plan: FaultPlan, attempts: int = 6) -> HardenedBackend:
    return HardenedBackend(
        FaultInjectingBackend(SimulatedBackend(dunnington(), seed=42), plan),
        ResiliencePolicy(retry=RetryPolicy(max_attempts=attempts)),
    )


@pytest.fixture(scope="module")
def clean_report():
    return ServetSuite(SimulatedBackend(dunnington(), seed=42)).run()


class TestTransientFaults:
    def test_five_percent_nan_matches_fault_free_caches(self, clean_report):
        backend = hardened(FaultPlan(seed=7, nan_rate=0.05))
        report = ServetSuite(backend).run(strict=False)
        assert report.cache_sizes == clean_report.cache_sizes
        # Affected phases are at worst degraded — never failed/skipped.
        assert set(report.phase_status.values()) <= {"ok", "degraded"}
        # The drill did inject faults (the run wasn't trivially clean).
        assert backend.inner.log.corrupted > 0
        assert report.degraded

    def test_sharing_structure_survives_transient_faults(self, clean_report):
        backend = hardened(FaultPlan(seed=7, nan_rate=0.05))
        report = ServetSuite(backend).run(strict=False)
        for clean_cache, cache in zip(clean_report.caches, report.caches):
            assert cache.sharing_groups == clean_cache.sharing_groups


class TestPersistentFaults:
    def test_dead_cache_phase_applies_comm_fallback(self, clean_report):
        # Traversal readings permanently dead: cache detection fails,
        # shared-cache and TLB phases are skipped, memory and
        # communication still run — comm probes at the 32 KiB fallback.
        plan = FaultPlan(seed=1, nan_rate=1.0, only=("traversal",))
        report = ServetSuite(hardened(plan, attempts=2)).run(strict=False)
        assert report.phase_status["cache_size"] == "failed"
        assert report.phase_status["shared_caches"] == "skipped"
        assert report.phase_status["tlb_detection"] == "skipped"
        assert report.phase_status["memory_overhead"] == "ok"
        assert report.phase_status["communication_costs"] == "degraded"
        assert COMM_PROBE_FALLBACK == 32 * KiB
        assert report.comm_probe_size == COMM_PROBE_FALLBACK
        assert report.comm_layers  # layers measured despite the fallback
        assert report.caches == []
        assert "cache_size" in report.phase_errors
        assert report.failed_phases == ["cache_size"]

    def test_partial_report_is_serializable(self, tmp_path):
        plan = FaultPlan(seed=1, nan_rate=1.0, only=("traversal",))
        report = ServetSuite(hardened(plan, attempts=2)).run(strict=False)
        path = tmp_path / "degraded.json"
        report.save(path)
        from repro import ServetReport

        clone = ServetReport.load(path)
        assert clone == report
        assert clone.degraded

    def test_strict_mode_preserves_raise_loudly(self):
        plan = FaultPlan(seed=1, nan_rate=1.0, only=("traversal",))
        with pytest.raises(ReproError):
            ServetSuite(hardened(plan, attempts=2)).run(strict=True)

    def test_timings_cover_failed_phases_too(self):
        # A failed phase still spent virtual time before bailing; the
        # Table I accounting must include it.
        plan = FaultPlan(seed=1, nan_rate=1.0, only=("bandwidth",))
        report = ServetSuite(hardened(plan, attempts=2)).run(strict=False)
        assert report.phase_status["memory_overhead"] == "failed"
        virtual, _ = report.timings["memory_overhead"]
        assert virtual > 0
