"""Shared fixtures.

Suite runs are the expensive part of the test suite (a second or two
each), so the full-report fixtures are session-scoped and shared by the
integration and autotune tests.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden report fixtures under tests/golden/ "
        "instead of comparing against them",
    )


@pytest.fixture
def update_golden(request) -> bool:
    return request.config.getoption("--update-golden")

from repro import ServetSuite, SimulatedBackend, dunnington, finis_terrae
from repro.core.report import ServetReport


@pytest.fixture(scope="session")
def dunnington_machine():
    return dunnington()


@pytest.fixture(scope="session")
def ft_cluster():
    return finis_terrae(2)


@pytest.fixture(scope="session")
def dunnington_backend(dunnington_machine) -> SimulatedBackend:
    return SimulatedBackend(dunnington_machine, seed=42)


@pytest.fixture(scope="session")
def dunnington_report(dunnington_machine) -> ServetReport:
    backend = SimulatedBackend(dunnington_machine, seed=42)
    return ServetSuite(backend).run()


@pytest.fixture(scope="session")
def ft_report(ft_cluster) -> ServetReport:
    backend = SimulatedBackend(ft_cluster, seed=42)
    return ServetSuite(backend).run()
