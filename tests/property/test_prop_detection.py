"""Property: cache detection is correct on *random* machines.

The paper validates on four fixed machines; here hypothesis generates
random-but-realistic two-level hierarchies (valid geometry, adequately
separated sizes, set counts a power of two) and requires the full
Fig. 4 pipeline to recover both sizes from measurements alone.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.backends import SimulatedBackend
from repro.core.cache_size import detect_caches
from repro.topology import generic_smp
from repro.units import KiB, MiB


@st.composite
def random_hierarchy(draw):
    """(l1_size, l1_ways, l2_size, l2_ways) with valid geometry."""
    l1_size = draw(st.sampled_from([8 * KiB, 16 * KiB, 32 * KiB, 64 * KiB]))
    l1_ways = draw(st.sampled_from([2, 4, 8]))
    # L2: between 256KB and 8MB, at least 8x the L1, and geometry such
    # that the set count is a power of two and >= 1 page color exists.
    l2_choices = []
    for size in (256 * KiB, 512 * KiB, 1 * MiB, 2 * MiB, 3 * MiB, 4 * MiB,
                 6 * MiB, 8 * MiB):
        if size < 8 * l1_size:
            continue
        for ways in (4, 8, 12, 16, 24):
            sets = size // (ways * 64)
            if sets * ways * 64 != size or sets & (sets - 1):
                continue
            if size % (ways * 4 * KiB) != 0:
                continue  # need whole page colors
            l2_choices.append((size, ways))
    size2, ways2 = draw(st.sampled_from(sorted(l2_choices)))
    return l1_size, l1_ways, size2, ways2


@given(random_hierarchy(), st.integers(0, 50))
@settings(max_examples=25, deadline=None)
def test_two_level_random_machines_detected(hierarchy, seed):
    l1_size, l1_ways, l2_size, l2_ways = hierarchy
    machine = generic_smp(
        name="random-smp",
        n_cores=2,
        levels=[
            (l1_size, l1_ways, 1, 3.0),
            (l2_size, l2_ways, 1, 18.0),
        ],
        mem_latency=280.0,
    )
    backend = SimulatedBackend(machine, seed=seed)
    result = detect_caches(backend)
    assert len(result.sizes) == 2, (hierarchy, seed)
    got_l1, got_l2 = result.sizes
    assert got_l1 == l1_size, (hierarchy, seed)
    if l2_size < 4 * MiB:
        assert got_l2 == l2_size, (hierarchy, seed)
    else:
        # At the top of the 256KB candidate grid (4% resolution at
        # 6MB+), an occasional placement draw lands one step off; the
        # paper-machine validation (tests/integration) stays exact.
        assert abs(got_l2 - l2_size) <= 256 * KiB, (hierarchy, seed)


@given(
    st.sampled_from([16 * KiB, 32 * KiB]),
    st.sampled_from([(2 * MiB, 8), (4 * MiB, 16)]),
    st.sampled_from([(8 * MiB, 16), (12 * MiB, 24), (16 * MiB, 16)]),
    st.integers(0, 20),
)
@settings(max_examples=15, deadline=None)
def test_three_level_random_machines_detected(l1_size, l2, l3, seed):
    l2_size, l2_ways = l2
    l3_size, l3_ways = l3
    if l3_size <= 2 * l2_size:
        return  # too close for distinct gradient regions at +-noise
    machine = generic_smp(
        name="random-3lvl",
        n_cores=2,
        levels=[
            (l1_size, 8, 1, 3.0),
            (l2_size, l2_ways, 1, 14.0),
            (l3_size, l3_ways, 2, 45.0),
        ],
        mem_latency=300.0,
    )
    backend = SimulatedBackend(machine, seed=seed)
    result = detect_caches(backend)
    assert len(result.sizes) == 3, ((l1_size, l2, l3), seed)
    got_l1, got_l2, got_l3 = result.sizes
    assert got_l1 == l1_size
    assert got_l3 == l3_size, ((l1_size, l2, l3), seed)
    if l3_size >= 6 * l2_size:
        assert got_l2 == l2_size, ((l1_size, l2, l3), seed)
    else:
        # With < 6x separation the L2 and L3 conflict smears overlap:
        # the L2 analysis window is clipped before its all-miss plateau
        # and the estimate may wobble by up to ~12% (a regime the
        # paper's machines never enter — their narrowest separation is
        # 4x, Dunnington's 3MB -> 12MB, where both windows still reach
        # their plateaus thanks to the L3's width).
        assert abs(got_l2 - l2_size) <= max(256 * KiB, l2_size // 8), (
            (l1_size, l2, l3),
            seed,
        )
