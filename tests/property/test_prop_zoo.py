"""Property tests for the machine zoo: determinism + validity invariants.

The ISSUE pins 24 seeds per family: the generator must be a pure
function of ``(family, seed)`` (byte-identical machines on re-generation)
and every generated machine must satisfy structural invariants —
monotone cache sizes up the observable hierarchy, sharing groups that
partition the cores at each level (an equivalence relation), and
positive, symmetric network latencies.
"""

from __future__ import annotations

import pytest

from repro.topology import CacheOrganization, machine_to_dict
from repro.zoo import family_names, generate_machine

SEEDS = range(24)

CASES = [
    (family, seed) for family in family_names() for seed in SEEDS
]


@pytest.mark.parametrize("family,seed", CASES)
def test_generation_is_deterministic(family, seed):
    a = generate_machine(family, seed)
    b = generate_machine(family, seed)
    # Byte-identical machine: same serialized dict and same value repr.
    assert machine_to_dict(a.machine) == machine_to_dict(b.machine)
    assert repr(a.machine) == repr(b.machine)
    assert repr(a.cluster) == repr(b.cluster)
    assert a.comm.canonical() == b.comm.canonical()
    assert a.truth == b.truth


@pytest.mark.parametrize("family,seed", CASES)
def test_machine_invariants(family, seed):
    gm = generate_machine(family, seed)
    machine = gm.machine

    # Monotone cache sizes up the hierarchy (victim buffers exempt,
    # and the rule must hold *across* them).
    prev = 0
    for level in machine.levels:
        if level.spec.organization is CacheOrganization.VICTIM:
            continue
        assert level.spec.size > prev
        prev = level.spec.size

    # Sharing at every level is an equivalence relation: the groups
    # partition the cores (no overlap, full coverage).
    cores = set(machine.cores)
    for level in machine.levels:
        seen: set[int] = set()
        for group in level.groups:
            assert not (seen & set(group))
            seen |= set(group)
        assert seen == cores

    # Network latencies: positive for every occurring relationship and
    # symmetric in the pair (the layer depends only on the relationship,
    # which is itself symmetric).
    cluster, comm = gm.cluster, gm.comm
    comm.validate_against(cluster)
    for params in comm.layers.values():
        assert params.base_latency > 0
        assert params.bandwidth > 0
        assert params.latency(32 * 1024) > 0
    sample = list(cluster.cores)[:6]
    for a in sample:
        for b in sample:
            if a == b:
                continue
            assert cluster.relationship(a, b) == cluster.relationship(b, a)
            assert comm.params_for_pair(cluster, a, b) == comm.params_for_pair(
                cluster, b, a
            )


@pytest.mark.parametrize("family", family_names())
def test_distinct_seeds_vary_the_family(family):
    # Not a strict requirement seed-by-seed, but across 24 seeds the
    # palette must actually be exercised: at least two distinct machine
    # configurations per family.
    digests = {
        repr(machine_to_dict(generate_machine(family, seed).machine))
        for seed in SEEDS
    }
    assert len(digests) >= 2


@pytest.mark.parametrize("family,seed", CASES)
def test_ground_truth_observables_on_probe_grid(family, seed):
    # Observable cache sizes must land on the mcalibrator probe
    # schedule (powers of two up to 2 MB, whole MB above) — the
    # precondition for exact positional recovery.
    gm = generate_machine(family, seed)
    n_levels = gm.truth.param("cache.levels").true_value
    MiB = 1024 * 1024
    for i in range(1, n_levels + 1):
        size = gm.truth.param(f"cache.L{i}.size").observable
        if size <= 2 * MiB:
            assert size & (size - 1) == 0, f"L{i} observable {size} not 2^k"
        else:
            assert size % MiB == 0, f"L{i} observable {size} not whole MiB"
