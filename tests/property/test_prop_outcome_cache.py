"""Property: the outcome cache is semantically invisible.

For any seed, any traversal mix (single-core and concurrent), and any
number of repeat calls, a :class:`TraversalEngine` with the outcome
cache enabled must return results identical to a cache-bypassed engine
driven by an identically seeded RNG — field for field, including the
RNG stream state left behind (the suite's determinism rests on it).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.memsim.outcome import TraversalOutcomeCache, stream_identity
from repro.memsim.paging import AddressSpace, ColoredPaging, RandomPaging
from repro.memsim.traversal import Traversal, TraversalEngine
from repro.topology import dempsey, dunnington
from repro.units import KiB, MiB

SEEDS = list(range(24))


@pytest.fixture(autouse=True)
def fresh_shared_spaces():
    AddressSpace.clear_shared()
    yield
    AddressSpace.clear_shared()


def random_traversals(rng: np.random.Generator, machine) -> list[Traversal]:
    """A random batch: 1-3 cores, mixed array sizes and strides."""
    n = int(rng.integers(1, min(4, machine.n_cores + 1)))
    cores = rng.choice(machine.n_cores, size=n, replace=False)
    sizes = rng.choice(
        [16 * KiB, 64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB], size=n
    )
    stride = int(rng.choice([64, 128, 256]))
    return [
        Traversal(int(core), int(nbytes), stride)
        for core, nbytes in zip(cores, sizes)
    ]


def results_equal(a, b) -> bool:
    return (
        a.cycles_per_access == b.cycles_per_access
        and a.miss_fraction == b.miss_fraction
        and a.n_accesses == b.n_accesses
        and a.seconds_per_round == b.seconds_per_round
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_cached_equals_bypassed(seed):
    machine = dempsey() if seed % 2 else dunnington()
    batch_rng = np.random.default_rng(seed + 5000)
    batches = [random_traversals(batch_rng, machine) for _ in range(4)]

    cache = TraversalOutcomeCache()
    cached_engine = TraversalEngine(machine, outcome_cache=cache)
    bypass_engine = TraversalEngine(machine, outcome_cache=None)

    rng_cached = np.random.default_rng(seed)
    rng_bypass = np.random.default_rng(seed)
    for batch in batches:
        hit_or_miss = cached_engine.run(batch, rng=rng_cached)
        fresh = bypass_engine.run(batch, rng=rng_bypass)
        assert results_equal(hit_or_miss, fresh)
        # Both paths must consume the parent stream identically, or the
        # *next* batch would diverge.
        assert stream_identity(rng_cached) == stream_identity(rng_bypass)
    assert cache.stats() == {"hits": 0, "misses": len(batches), "entries": len(batches)}

    # Replaying the whole sequence from an identically seeded parent
    # stream reproduces every key: all hits, same results.
    rng_replay = np.random.default_rng(seed)
    rng_check = np.random.default_rng(seed)
    for batch in batches:
        assert results_equal(
            cached_engine.run(batch, rng=rng_replay),
            bypass_engine.run(batch, rng=rng_check),
        )
    assert cache.stats()["hits"] == len(batches)
    assert cache.stats()["misses"] == len(batches)


@pytest.mark.parametrize("seed", SEEDS)
def test_cached_equals_bypassed_under_coloring(seed):
    """Same property under the page-coloring ablation policy."""
    machine = dunnington()
    paging = ColoredPaging(n_colors=64)
    batch = random_traversals(np.random.default_rng(seed + 9000), machine)

    cache = TraversalOutcomeCache()
    cached_engine = TraversalEngine(machine, paging=paging, outcome_cache=cache)
    bypass_engine = TraversalEngine(machine, paging=paging, outcome_cache=None)
    for _ in range(2):  # second pass hits
        assert results_equal(
            cached_engine.run(batch, rng=np.random.default_rng(seed)),
            bypass_engine.run(batch, rng=np.random.default_rng(seed)),
        )
    assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}


@pytest.mark.parametrize("seed", SEEDS[:6])
def test_shared_spaces_do_not_leak_across_policies(seed):
    """Equal (array, stride, stream) under different policies must not
    collide in the shared page-table cache."""
    machine = dempsey()
    batch = [Traversal(0, 256 * KiB, 64)]
    random_engine = TraversalEngine(
        machine, paging=RandomPaging(), outcome_cache=None
    )
    colored_engine = TraversalEngine(
        machine, paging=ColoredPaging(n_colors=64), outcome_cache=None
    )
    random_engine.run(batch, rng=np.random.default_rng(seed))
    colored_engine.run(batch, rng=np.random.default_rng(seed))
    # Both runs used the shared-space constructor with the same
    # (page_size, array_bytes, stream) — only the policy token keeps
    # their keys apart.  A collision would leave one entry (and hand
    # the colored run a randomly placed page table).
    tables = [
        space.page_table
        for key, space in AddressSpace._shared.items()
        if key[1:3] == (machine.page_size, 256 * KiB)
    ]
    assert len(tables) == 2
    assert not np.array_equal(tables[0], tables[1])
