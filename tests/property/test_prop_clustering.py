"""Properties of similarity clustering and group inference."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.clustering import cluster_similar, groups_from_pairs

values = st.lists(
    st.floats(0.1, 1e6, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=40,
)


@given(values, st.floats(0.0, 0.5))
@settings(max_examples=100, deadline=None)
def test_clustering_partitions_input(vals, tol):
    items = list(enumerate(vals))
    clusters = cluster_similar(items, rel_tol=tol)
    members = [m for c in clusters for m in c.members]
    assert sorted(members) == sorted(range(len(vals)))


@given(values, st.floats(0.0, 0.5))
@settings(max_examples=100, deadline=None)
def test_clusters_sorted_and_nonempty(vals, tol):
    clusters = cluster_similar(list(enumerate(vals)), rel_tol=tol)
    reps = [c.value for c in clusters]
    assert reps == sorted(reps)
    assert all(c.members for c in clusters)


@given(values)
@settings(max_examples=50, deadline=None)
def test_zero_tolerance_groups_equal_values_only(vals):
    clusters = cluster_similar(list(enumerate(vals)), rel_tol=0.0)
    for c in clusters:
        got = {vals[m] for m in c.members}
        assert len(got) == 1


@given(
    st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 20)).filter(
            lambda p: p[0] != p[1]
        ),
        max_size=40,
    )
)
@settings(max_examples=100, deadline=None)
def test_groups_are_disjoint_and_cover_pairs(raw_pairs):
    pairs = [tuple(sorted(p)) for p in raw_pairs]
    groups = groups_from_pairs(pairs)
    flat = [c for g in groups for c in g]
    assert len(flat) == len(set(flat))  # disjoint
    mentioned = {c for p in pairs for c in p}
    assert set(flat) == mentioned  # complete
    # Every pair's endpoints are in the same group.
    of = {c: i for i, g in enumerate(groups) for c in g}
    for a, b in pairs:
        assert of[a] == of[b]


@given(
    st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(
            lambda p: p[0] != p[1]
        ),
        max_size=30,
    ),
    st.randoms(),
)
@settings(max_examples=50, deadline=None)
def test_groups_order_invariant(raw_pairs, rnd):
    pairs = [tuple(sorted(p)) for p in raw_pairs]
    shuffled = list(pairs)
    rnd.shuffle(shuffled)
    assert groups_from_pairs(pairs) == groups_from_pairs(shuffled)
