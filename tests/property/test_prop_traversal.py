"""Property: the analytic traversal engine equals the explicit LRU sim.

The whole fast path of the substrate rests on the cyclic-LRU theorem
(overloaded set => thrash, otherwise all hits).  Here hypothesis builds
random small machines and traversal workloads and checks the analytic
steady state against an explicit warm-up-then-measure LRU simulation,
both for a single core and for concurrent traversals through a shared
cache.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.memsim.cache import MultiLevelSimulator, TraceAccess, interleave_round_robin
from repro.memsim.paging import ContiguousPaging, RandomPaging
from repro.memsim.prefetch import NO_PREFETCH
from repro.memsim.traversal import Traversal, TraversalEngine, strided_addresses
from repro.topology import generic_smp
from repro.units import KiB


@st.composite
def small_machine(draw):
    """A 2-core machine with small caches (explicit sim stays fast)."""
    l1_kb = draw(st.sampled_from([1, 2, 4]))
    l1_ways = draw(st.sampled_from([1, 2, 4]))
    l2_kb = draw(st.sampled_from([16, 32]))
    l2_ways = draw(st.sampled_from([2, 4, 8]))
    l2_shared = draw(st.sampled_from([1, 2]))
    return generic_smp(
        n_cores=2,
        levels=[
            (f"{l1_kb}KB", l1_ways, 1, 3.0),
            (f"{l2_kb}KB", l2_ways, l2_shared, 11.0),
        ],
        page_size="4KB",
        mem_latency=97.0,
    )


def build_trace(engine: TraversalEngine, traversal: Traversal, rng):
    """The exact line streams the analytic engine would compute."""
    from repro.memsim.paging import AddressSpace

    machine = engine.machine
    vaddrs = strided_addresses(traversal.array_bytes, traversal.stride)
    space = AddressSpace(
        machine.page_size, engine.paging, traversal.array_bytes, rng
    )
    line = machine.levels[0].spec.line_size
    vlines = space.virtual_lines(vaddrs, line)
    plines = space.physical_lines(vaddrs, line)
    return [
        TraceAccess(traversal.core, int(v), int(p))
        for v, p in zip(vlines, plines)
    ]


@given(
    machine=small_machine(),
    size_kb=st.integers(1, 64),
    stride=st.sampled_from([256, 512, 1024]),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=40, deadline=None)
def test_single_core_analytic_equals_explicit(machine, size_kb, stride, seed):
    engine = TraversalEngine(machine, prefetch=NO_PREFETCH)
    traversal = Traversal(0, size_kb * KiB, stride)

    rng = np.random.default_rng(seed)
    analytic = engine.run([traversal], rng=np.random.default_rng(seed))

    # Reconstruct the same page placement: the engine spawns one child
    # rng per traversal, so mirror that here.
    from repro.rng import spawn

    child = spawn(np.random.default_rng(seed), 1)[0]
    trace = build_trace(engine, traversal, child)

    sim = MultiLevelSimulator(machine)
    outcome = sim.run(trace, rounds=3, measure_last_round_only=True)

    assert outcome.cycles_per_access[0] == pytest.approx(
        analytic.cycles_per_access[0]
    )


@given(
    machine=small_machine(),
    size_kb=st.integers(2, 48),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=25, deadline=None)
def test_concurrent_pair_analytic_equals_explicit(machine, size_kb, seed):
    engine = TraversalEngine(machine, prefetch=NO_PREFETCH)
    traversals = [
        Traversal(0, size_kb * KiB, 1024),
        Traversal(1, size_kb * KiB, 1024),
    ]
    analytic = engine.run(traversals, rng=np.random.default_rng(seed))

    from repro.rng import spawn

    children = spawn(np.random.default_rng(seed), 2)
    streams = [
        build_trace(engine, trav, child)
        for trav, child in zip(traversals, children)
    ]
    merged = interleave_round_robin(streams)
    sim = MultiLevelSimulator(machine)
    outcome = sim.run(merged, rounds=3, measure_last_round_only=True)

    for core in (0, 1):
        assert outcome.cycles_per_access[core] == pytest.approx(
            analytic.cycles_per_access[core]
        )


@given(
    size_kb=st.integers(1, 128),
    stride=st.sampled_from([512, 1024, 2048]),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=30, deadline=None)
def test_contiguous_paging_cycles_depend_only_on_size(size_kb, stride, seed):
    """With physically contiguous pages the result must be deterministic
    (no placement randomness can leak through)."""
    machine = generic_smp(
        n_cores=1, levels=[("8KB", 2, 1, 3.0), ("64KB", 8, 1, 12.0)]
    )
    engine = TraversalEngine(machine, paging=ContiguousPaging(), prefetch=NO_PREFETCH)
    a = engine.single(size_kb * KiB, stride, rng=seed)
    b = engine.single(size_kb * KiB, stride, rng=seed + 1)
    assert a == b


@given(seed=st.integers(0, 2**16), size_kb=st.sampled_from([64, 128, 256]))
@settings(max_examples=20, deadline=None)
def test_random_paging_never_beats_contiguous(seed, size_kb):
    """Random placement can only add conflict misses, never remove them,
    for arrays at or below the cache capacity."""
    machine = generic_smp(
        n_cores=1, levels=[("8KB", 2, 1, 3.0), ("256KB", 8, 1, 12.0)]
    )
    contiguous = TraversalEngine(
        machine, paging=ContiguousPaging(), prefetch=NO_PREFETCH
    ).single(size_kb * KiB, 1024, rng=seed)
    random_paged = TraversalEngine(
        machine, paging=RandomPaging(), prefetch=NO_PREFETCH
    ).single(size_kb * KiB, 1024, rng=seed)
    assert random_paged >= contiguous - 1e-9
