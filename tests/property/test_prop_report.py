"""Property: ServetReport JSON round-trips for arbitrary content."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.report import (
    CacheLevelReport,
    CommLayerReport,
    MemoryLevelReport,
    ServetReport,
)

pairs = st.lists(
    st.tuples(st.integers(0, 63), st.integers(0, 63))
    .filter(lambda p: p[0] != p[1])
    .map(lambda p: (min(p), max(p))),
    max_size=10,
    unique=True,
)

positive = st.floats(1e-9, 1e12, allow_nan=False, allow_infinity=False)


@st.composite
def cache_reports(draw):
    return CacheLevelReport(
        level=draw(st.integers(1, 4)),
        size=draw(st.integers(1024, 1 << 26)),
        method=draw(st.sampled_from(["l1-peak", "positional", "probabilistic"])),
        shared_pairs=draw(pairs),
        sharing_groups=draw(
            st.lists(st.lists(st.integers(0, 63), min_size=1, max_size=6), max_size=4)
        ),
        ways=draw(st.one_of(st.none(), st.integers(1, 32))),
    )


@st.composite
def memory_reports(draw):
    return MemoryLevelReport(
        bandwidth=draw(positive),
        pairs=draw(pairs),
        groups=draw(
            st.lists(st.lists(st.integers(0, 63), min_size=1, max_size=8), max_size=4)
        ),
        scalability=draw(st.lists(positive, max_size=8)),
    )


@st.composite
def comm_reports(draw, index):
    return CommLayerReport(
        index=index,
        latency=draw(positive),
        pairs=draw(pairs),
        characterization=draw(
            st.lists(
                st.tuples(st.integers(1, 1 << 24), positive, positive), max_size=8
            )
        ),
        scalability=draw(
            st.lists(st.tuples(st.integers(2, 64), positive, positive), max_size=6)
        ),
    )


@st.composite
def reports(draw):
    n_layers = draw(st.integers(0, 3))
    return ServetReport(
        system=draw(st.text(min_size=1, max_size=20)),
        n_cores=draw(st.integers(1, 64)),
        page_size=draw(st.sampled_from([4096, 8192, 16384])),
        caches=draw(st.lists(cache_reports(), max_size=4)),
        memory_reference=draw(positive),
        memory_levels=draw(st.lists(memory_reports(), max_size=3)),
        comm_probe_size=draw(st.integers(0, 1 << 20)),
        comm_layers=[draw(comm_reports(i)) for i in range(n_layers)],
        tlb_entries=draw(st.one_of(st.none(), st.integers(1, 1 << 16))),
        timings=draw(
            st.dictionaries(
                st.sampled_from(["cache_size", "shared_caches", "x"]),
                st.tuples(positive, positive),
                max_size=3,
            )
        ),
    )


@given(reports())
@settings(max_examples=60, deadline=None)
def test_dict_roundtrip(report):
    assert ServetReport.from_dict(report.to_dict()) == report


@given(reports())
@settings(max_examples=30, deadline=None)
def test_file_roundtrip(report):
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "r.json"
        report.save(path)
        assert ServetReport.load(path) == report


@given(reports())
@settings(max_examples=30, deadline=None)
def test_summary_never_crashes(report):
    text = report.summary()
    assert report.system.splitlines()[0] in text or len(text) > 0
