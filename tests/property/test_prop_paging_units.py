"""Properties of page placement policies and the unit helpers."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.probabilistic import predicted_miss_rate
from repro.memsim.paging import ColoredPaging, ContiguousPaging, RandomPaging
from repro.units import format_size, parse_size


@given(
    st.sampled_from([RandomPaging, ContiguousPaging]),
    st.integers(1, 2000),
    st.integers(0, 2**20),
)
@settings(max_examples=60, deadline=None)
def test_policies_produce_distinct_valid_frames(policy_cls, n_pages, seed):
    policy = policy_cls(physical_pages=1 << 14)
    if n_pages > policy.physical_pages:
        return
    frames = policy.place(n_pages, np.random.default_rng(seed))
    assert len(frames) == n_pages
    assert len(np.unique(frames)) == n_pages
    assert frames.min() >= 0 and frames.max() < policy.physical_pages


@given(st.sampled_from([2, 4, 8, 16, 32]), st.integers(1, 500), st.integers(0, 999))
@settings(max_examples=60, deadline=None)
def test_colored_paging_always_preserves_color(n_colors, n_pages, seed):
    policy = ColoredPaging(n_colors=n_colors, physical_pages=1 << 15)
    frames = policy.place(n_pages, np.random.default_rng(seed))
    assert np.array_equal(frames % n_colors, np.arange(n_pages) % n_colors)


@given(st.integers(1, 10_000), st.sampled_from([2, 4, 8, 16]), st.sampled_from([8, 16, 32, 64, 128]))
@settings(max_examples=100, deadline=None)
def test_predicted_miss_rate_bounds_and_monotonicity(n_pages, ways, colors):
    p = 1.0 / colors
    mr = predicted_miss_rate(np.array([n_pages, n_pages + 100]), ways, p)
    assert 0.0 <= mr[0] <= 1.0
    assert mr[1] >= mr[0] - 1e-12  # more pages, never fewer conflicts


@given(st.integers(1, 50_000), st.sampled_from([2, 4, 8]))
@settings(max_examples=50, deadline=None)
def test_size_biased_dominates_paper_formula(n_pages, ways):
    pages = np.array([float(n_pages)])
    biased = predicted_miss_rate(pages, ways, 1 / 32, size_biased=True)[0]
    paper = predicted_miss_rate(pages, ways, 1 / 32, size_biased=False)[0]
    assert biased >= paper - 1e-12


@given(st.integers(1, 1 << 40))
@settings(max_examples=200, deadline=None)
def test_format_parse_size_roundtrip_on_round_values(nbytes):
    # Round to something format_size renders exactly, then round-trip.
    text = format_size(nbytes)
    # Only assert for exact renderings (no precision loss markers).
    if any(ch in text for ch in ("e", "E")) or "." in text and len(text.split(".")[1].rstrip("KMGB/s")) > 3:
        return
    reparsed = parse_size(text) if text[-1] != "B" or text[-2:] in ("KB", "MB", "GB") else parse_size(text)
    # format_size may round to 4 significant digits; accept 0.1% error.
    assert abs(reparsed - nbytes) <= max(1, nbytes * 2e-3)
