"""Property: the calendar queue is order-identical to the binary heap.

The discrete-event engine's whole contract is the pop order — (time,
then schedule sequence) — and :class:`HeapScheduler` is the reference
implementation kept for exactly this comparison.  Seeded random
schedules (including heavy timestamp ties, interleaved pops, forced
calendar rebuilds, and zero-delay fast-lane traffic at the engine
level) must drain in the same order from both.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simmpi.events import CalendarScheduler, Engine, HeapScheduler

SEEDS = list(range(24))


class TinyCalendar(CalendarScheduler):
    """Calendar forced into frequent rebuilds (tiny bucket budget)."""

    MAX_BUCKETS = 4


def random_times(rng: np.random.Generator, n: int) -> list[float]:
    """Timestamps with deliberate ties and wildly mixed magnitudes."""
    pool = np.concatenate(
        [
            rng.uniform(0.0, 1e-3, size=n),  # microsecond-scale comm events
            rng.uniform(0.0, 10.0, size=n),  # second-scale compute events
            rng.choice([0.0, 0.5, 1.0, 2.5], size=n),  # guaranteed ties
        ]
    )
    times = rng.choice(pool, size=n, replace=True)
    return [float(t) for t in times]


def drain_in_lockstep(rng, scheduler_cls, n_events: int) -> None:
    """Push/pop the same random script through both schedulers."""
    cal = scheduler_cls()
    heap = HeapScheduler()
    times = random_times(rng, n_events)
    seq = 0
    popped_cal: list[tuple[float, int]] = []
    popped_heap: list[tuple[float, int]] = []
    for time in times:
        cal.push(time, seq, None)
        heap.push(time, seq, None)
        seq += 1
        assert cal.peek() == heap.peek()
        if rng.random() < 0.3 and len(heap):  # interleave pops with pushes
            popped_cal.append(cal.pop()[:2])
            popped_heap.append(heap.pop()[:2])
    drained_from = len(popped_heap)
    while len(heap):
        popped_cal.append(cal.pop()[:2])
        popped_heap.append(heap.pop()[:2])
    assert len(cal) == 0
    assert popped_cal == popped_heap
    # Once pushes stop, the remaining drain is globally (time, seq)
    # ordered.  (The interleaved phase need not be: a later push may
    # carry an earlier timestamp than events already popped.)
    assert popped_heap[drained_from:] == sorted(popped_heap[drained_from:])


@pytest.mark.parametrize("seed", SEEDS)
def test_calendar_pops_in_heap_order(seed):
    drain_in_lockstep(np.random.default_rng(seed), CalendarScheduler, 120)


@pytest.mark.parametrize("seed", SEEDS)
def test_calendar_survives_forced_rebuilds(seed):
    # MAX_BUCKETS=4 makes almost every push widen the calendar; the
    # order contract must hold across every _rebuild.
    drain_in_lockstep(np.random.default_rng(seed + 1000), TinyCalendar, 120)


@pytest.mark.parametrize("seed", SEEDS)
def test_engine_execution_order_matches_heap_engine(seed):
    """Full engines (calendar + zero-delay lane vs plain heap) run the
    same randomized self-rescheduling program in the same order."""
    rng = np.random.default_rng(seed)
    script = [
        (float(d), int(k))
        for d, k in zip(
            rng.choice([0.0, 0.0, 1e-6, 1e-3, 0.25], size=40),
            rng.integers(0, 3, size=40),
        )
    ]

    def run(engine: Engine) -> list[tuple[int, float]]:
        order: list[tuple[int, float]] = []
        cursor = iter(enumerate(script))

        def fire(event_id: int, fanout: int) -> None:
            order.append((event_id, engine.now))
            # Each event schedules up to `fanout` successors, consuming
            # the shared script so both engines see identical requests.
            for _ in range(fanout):
                try:
                    next_id, (delay, next_fanout) = next(cursor)
                except StopIteration:
                    return
                engine.schedule(
                    delay, lambda i=next_id, f=next_fanout: fire(i, f)
                )

        first_id, (first_delay, first_fanout) = next(cursor)
        engine.schedule(first_delay, lambda: fire(first_id, first_fanout))
        # Seed extra roots so the queue never starves early.
        for _ in range(4):
            try:
                root_id, (delay, fanout) = next(cursor)
            except StopIteration:
                break
            engine.schedule(delay, lambda i=root_id, f=fanout: fire(i, f))
        engine.run()
        return order

    calendar_order = run(Engine())
    heap_order = run(Engine(HeapScheduler()))
    assert calendar_order == heap_order
    times = [t for _, t in calendar_order]
    assert times == sorted(times)


@pytest.mark.parametrize("seed", SEEDS[:8])
def test_zero_delay_respects_earlier_calendar_event_at_same_time(seed):
    """A delay-0 event must not jump ahead of an earlier-scheduled
    calendar event sitting at exactly the current timestamp."""
    rng = np.random.default_rng(seed)
    t = float(rng.uniform(0.1, 5.0))
    for engine in (Engine(), Engine(HeapScheduler())):
        order: list[str] = []

        def arrive():
            order.append("arrive")
            engine.schedule(0.0, lambda: order.append("zero"))

        # arrive (seq 0) pops first and enqueues "zero" (seq 2) in the
        # fast lane while "calendar" (seq 1) still sits in the calendar
        # at the same timestamp t — (time, seq) must decide.
        engine.schedule(t, arrive)
        engine.schedule(t, lambda: order.append("calendar"))
        engine.run()
        assert order == ["arrive", "calendar", "zero"]
