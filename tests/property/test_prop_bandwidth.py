"""Properties of the max-min fair bandwidth allocator."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.memsim.bandwidth import allocate_bandwidth
from repro.topology import BandwidthDomain


@st.composite
def random_tree(draw):
    """A two-level bandwidth tree over 4-12 cores plus random demands."""
    n_groups = draw(st.integers(1, 4))
    group_size = draw(st.integers(1, 3))
    n_cores = n_groups * group_size
    children = []
    for g in range(n_groups):
        cores = frozenset(range(g * group_size, (g + 1) * group_size))
        cap = draw(st.floats(0.5, 10.0))
        children.append(BandwidthDomain(f"g{g}", cap, cores))
    root_cap = draw(st.floats(1.0, 20.0))
    root = BandwidthDomain(
        "root", root_cap, frozenset(range(n_cores)), tuple(children)
    )
    active = draw(
        st.lists(st.integers(0, n_cores - 1), min_size=1, max_size=n_cores, unique=True)
    )
    demands = {c: draw(st.floats(0.1, 5.0)) for c in active}
    return root, demands


@given(random_tree())
@settings(max_examples=80, deadline=None)
def test_capacities_and_demands_respected(tree):
    root, demands = tree
    alloc = allocate_bandwidth(root, demands)
    assert set(alloc) == set(demands)
    for core, bw in alloc.items():
        assert 0.0 <= bw <= demands[core] + 1e-9
    for domain in root.walk():
        used = sum(alloc.get(c, 0.0) for c in domain.cores)
        assert used <= domain.capacity + 1e-6


@given(random_tree())
@settings(max_examples=80, deadline=None)
def test_pareto_efficiency(tree):
    """No core can be starved while every constraint on its path has
    slack (otherwise the fill would have continued)."""
    root, demands = tree
    alloc = allocate_bandwidth(root, demands)
    for core, bw in alloc.items():
        if bw >= demands[core] - 1e-9:
            continue  # satisfied
        path = root.domains_of(core)
        saturated = any(
            sum(alloc.get(c, 0.0) for c in d.cores) >= d.capacity - 1e-6
            for d in path
        )
        assert saturated, f"core {core} starved with slack everywhere"


@given(random_tree())
@settings(max_examples=60, deadline=None)
def test_max_min_fairness(tree):
    """If core a got strictly less than core b, then a must be demand-
    limited or share a saturated domain where b is no better off."""
    root, demands = tree
    alloc = allocate_bandwidth(root, demands)
    for a in alloc:
        if alloc[a] >= demands[a] - 1e-9:
            continue
        # a is constraint-limited: every core in some saturated domain
        # of a's path must have allocation <= alloc[a] + eps, unless
        # itself demand-limited below that.
        path = [
            d
            for d in root.domains_of(a)
            if sum(alloc.get(c, 0.0) for c in d.cores) >= d.capacity - 1e-6
        ]
        assert path
        tightest = path[-1]
        for other in tightest.cores:
            if other not in alloc or other == a:
                continue
            assert (
                alloc[other] <= alloc[a] + 1e-6
                or alloc[other] >= demands[other] - 1e-9
            )


@given(random_tree(), st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_deterministic(tree, _salt):
    root, demands = tree
    assert allocate_bandwidth(root, demands) == allocate_bandwidth(root, demands)


@given(random_tree())
@settings(max_examples=60, deadline=None)
def test_adding_a_core_never_helps_existing(tree):
    """Activating one more core can only shrink (or keep) the others'
    allocations — contention is monotone."""
    root, demands = tree
    inactive = sorted(set(range(len(root.cores))) - set(demands))
    if not inactive:
        return
    before = allocate_bandwidth(root, demands)
    bigger = dict(demands)
    bigger[inactive[0]] = 1.0
    after = allocate_bandwidth(root, bigger)
    for core in demands:
        assert after[core] <= before[core] + 1e-6
