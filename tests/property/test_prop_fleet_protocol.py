"""Properties of the fleet message protocol: round-trip fidelity and
payload-contract enforcement."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FleetProtocolError
from repro.fleet import MESSAGE_TYPES, Message
from repro.fleet.protocol import REQUIRED_PAYLOAD

# JSON-clean payload values: what a real frame can carry.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**53), 2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)
_values = st.recursive(
    _scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.dictionaries(st.text(max_size=8), inner, max_size=4),
    ),
    max_leaves=10,
)
_names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1,
    max_size=12,
)


@st.composite
def messages(draw):
    msg_type = draw(st.sampled_from(MESSAGE_TYPES))
    payload = {
        key: draw(_values) for key in REQUIRED_PAYLOAD[msg_type]
    }
    payload.update(
        draw(st.dictionaries(st.text(max_size=8), _values, max_size=3))
    )
    return Message(
        type=msg_type,
        sender=draw(_names),
        recipient=draw(_names),
        seq=draw(st.integers(0, 2**31)),
        time=draw(st.floats(0.0, 1e9, allow_nan=False)),
        payload=payload,
    )


@given(messages())
@settings(max_examples=120, deadline=None)
def test_encode_decode_roundtrip(msg):
    assert Message.decode(msg.encode()) == msg


@given(messages())
@settings(max_examples=120, deadline=None)
def test_encoding_is_canonical_and_stable(msg):
    wire = msg.encode()
    # Canonical form: re-encoding the decoded frame is byte-identical.
    assert Message.decode(wire).encode() == wire
    # And the wire is plain JSON with exactly the frame fields.
    data = json.loads(wire)
    assert set(data) == {"type", "sender", "recipient", "seq", "time", "payload"}


@given(messages())
@settings(max_examples=120, deadline=None)
def test_stripping_any_required_field_is_rejected(msg):
    for key in REQUIRED_PAYLOAD[msg.type]:
        data = msg.to_dict()
        data["payload"] = {
            k: v for k, v in data["payload"].items() if k != key
        }
        with pytest.raises(FleetProtocolError):
            Message.decode(json.dumps(data))


@given(messages(), st.text(max_size=12))
@settings(max_examples=120, deadline=None)
def test_retyping_to_unknown_type_is_rejected(msg, bogus_type):
    if bogus_type in MESSAGE_TYPES:
        return
    data = msg.to_dict()
    data["type"] = bogus_type
    with pytest.raises(FleetProtocolError):
        Message.decode(json.dumps(data))


@given(messages())
@settings(max_examples=60, deadline=None)
def test_decode_never_accepts_truncated_frames(msg):
    wire = msg.encode()
    for cut in (1, len(wire) // 2, len(wire) - 1):
        truncated = wire[:cut]
        try:
            decoded = Message.decode(truncated)
        except FleetProtocolError:
            continue
        # JSON prefixes are almost never valid; if one is (e.g. a frame
        # whose prefix happens to parse), it must still be a full frame.
        assert decoded == msg
