"""Property spine of the reuse-distance workload model.

A fixed 24-seed grid (the contract the co-scheduling advisor rests on)
plus hypothesis checks of the recorder against a naive stack:

- profiles are deterministic functions of ``(generator, seed)``;
- histograms conserve mass (``cold + sum(counts) == accesses``);
- CDFs are monotone and bounded by ``1 - cold/accesses``;
- every predicted slowdown is ``>= 1.0``;
- pair predictions are invariant under argument order;
- a solo "co-run" predicts a slowdown of exactly 1.0 (not epsilon-close).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workload import (
    CachePressureModel,
    ReuseDistanceRecorder,
    ReuseProfile,
    bucket_of,
    corun_miss_ratio,
    enumerate_partitions,
    parse_workload,
    predict_corun,
)

SEEDS = list(range(24))

#: Small parameterizations so the 24-seed grid stays fast; every
#: generator archetype is exercised.
GRID = [
    "streaming:lines=512,rounds=3",
    "blocked:lines=512,block=64,repeats=3,rounds=2",
    "zipf:accesses=3072,lines=1024,s=1.2",
    "stencil:lines=384,halo=2,sweeps=2",
]


def fresh_profile(spec: str, seed: int) -> ReuseProfile:
    """Profile without the process-wide memo (for determinism checks)."""
    workload = parse_workload(spec)
    recorder = ReuseDistanceRecorder(initial_slots=64)
    recorder.observe(workload.lines(seed))
    return ReuseProfile.from_recorder(recorder, workload.spec, seed)


def naive_profile(stream) -> tuple[int, dict[int, list[int]]]:
    """Reference reuse distances via an explicit LRU stack."""
    stack: OrderedDict[int, bool] = OrderedDict()
    last_pos: dict[int, int] = {}
    bins: dict[int, list[int]] = {}
    cold = 0
    for t, raw in enumerate(stream):
        line = int(raw)
        if line in stack:
            keys = list(stack.keys())
            distance = len(keys) - 1 - keys.index(line)
            gap = t - last_pos[line] - 1
            row = bins.setdefault(bucket_of(distance), [0, 0, 0])
            row[0] += 1
            row[1] += distance
            row[2] += gap
            del stack[line]
        else:
            cold += 1
        stack[line] = True
        last_pos[line] = t
    return cold, bins


@given(
    stream=st.lists(st.integers(0, 40), min_size=1, max_size=400),
    slots=st.sampled_from([2, 3, 8, 64]),
)
@settings(max_examples=60, deadline=None)
def test_recorder_equals_naive_stack(stream, slots):
    """The Fenwick recorder matches the O(n^2) stack, compactions and all."""
    recorder = ReuseDistanceRecorder(initial_slots=slots)
    recorder.observe(np.asarray(stream, dtype=np.int64))
    cold, bins = naive_profile(stream)
    assert recorder.cold == cold
    assert recorder.accesses == len(stream)
    assert recorder.distinct_lines == len(set(stream))
    assert {lo: (c, sd, sg) for lo, c, sd, sg in recorder.bins()} == {
        lo: tuple(row) for lo, row in bins.items()
    }


@given(stream=st.lists(st.integers(0, 30), min_size=1, max_size=200))
@settings(max_examples=40, deadline=None)
def test_recorder_chunking_is_transparent(stream):
    """Feeding one access at a time equals one big observe call."""
    whole = ReuseDistanceRecorder(initial_slots=4)
    whole.observe(np.asarray(stream, dtype=np.int64))
    chunked = ReuseDistanceRecorder(initial_slots=4)
    for x in stream:
        chunked.observe([x])
    assert whole.bins() == chunked.bins()
    assert whole.cold == chunked.cold


@given(distance=st.integers(0, 2**40))
@settings(max_examples=200, deadline=None)
def test_bucket_of_bounds(distance):
    """Buckets floor their members and stay within one sub-octave step."""
    lo = bucket_of(distance)
    assert lo <= distance
    if distance < 128:
        assert lo == distance
    else:
        # Relative rounding error bounded by the sub-bucket width.
        assert distance - lo < max(1, distance // 16)
        assert bucket_of(lo) == lo


@pytest.mark.parametrize("spec", GRID)
def test_profiles_deterministic_per_seed(spec):
    for seed in SEEDS:
        first = fresh_profile(spec, seed)
        second = fresh_profile(spec, seed)
        assert first == second, f"{spec} seed {seed} not reproducible"


@pytest.mark.parametrize("spec", GRID)
def test_profiles_conserve_mass_and_monotone_cdf(spec):
    for seed in SEEDS:
        profile = fresh_profile(spec, seed)
        assert profile.cold + sum(b.count for b in profile.bins) == (
            profile.accesses
        )
        cdf = profile.cdf()
        distances = [d for d, _ in cdf]
        shares = [s for _, s in cdf]
        assert distances == sorted(distances)
        assert shares == sorted(shares)
        if shares:
            assert 0.0 < shares[-1] <= 1.0 - profile.cold / profile.accesses + 1e-12
        # miss_ratio is non-increasing in capacity.
        ratios = [profile.miss_ratio(c) for c in (1, 16, 64, 256, 1024)]
        assert ratios == sorted(ratios, reverse=True)
        # footprint is non-decreasing and bounded by the footprint.
        fps = [profile.footprint(w) for w in (1, 10, 100, 1000, 10**6)]
        assert fps == sorted(fps)
        assert fps[-1] <= profile.distinct_lines


def test_slowdowns_at_least_one_across_grid():
    model = CachePressureModel(capacity_lines=256)
    for seed in SEEDS:
        profiles = [fresh_profile(spec, seed) for spec in GRID]
        prediction = predict_corun(model, profiles)
        for w in prediction.workloads:
            assert w.slowdown >= 1.0
            assert w.corun_miss_ratio >= w.solo_miss_ratio - 1e-12
        assert prediction.worst_slowdown >= prediction.mean_slowdown >= 1.0


def test_pair_prediction_symmetric():
    model = CachePressureModel(capacity_lines=200)
    for seed in SEEDS:
        a = fresh_profile(GRID[seed % len(GRID)], seed)
        b = fresh_profile(GRID[(seed + 1) % len(GRID)], seed + 100)
        forward = predict_corun(model, [a, b])
        backward = predict_corun(model, [b, a])
        by_name = {w.name: w for w in backward.workloads}
        for w in forward.workloads:
            assert w == by_name[w.name]


def test_solo_corun_is_exactly_one():
    for seed in SEEDS:
        for spec in GRID:
            profile = fresh_profile(spec, seed)
            for capacity in (1, 32, 700):
                model = CachePressureModel(capacity_lines=capacity)
                solo = predict_corun(model, [profile]).workloads[0]
                assert solo.slowdown == 1.0
                assert solo.corun_miss_ratio == profile.miss_ratio(capacity)
                assert corun_miss_ratio(profile, [], capacity) == (
                    profile.miss_ratio(capacity)
                )


@given(
    n=st.integers(1, 6),
    blocks=st.integers(1, 4),
    size=st.integers(1, 4),
)
@settings(max_examples=60, deadline=None)
def test_partition_enumeration_sound(n, blocks, size):
    from repro.errors import WorkloadError

    if blocks * size < n:
        with pytest.raises(WorkloadError):
            enumerate_partitions(n, blocks, size)
        return
    partitions = enumerate_partitions(n, blocks, size)
    seen = set()
    for partition in partitions:
        # Exact cover of range(n) under both bounds.
        items = [i for block in partition for i in block]
        assert sorted(items) == list(range(n))
        assert len(partition) <= blocks
        assert all(1 <= len(block) <= size for block in partition)
        # Canonical: blocks ascend internally and by first element.
        assert all(list(b) == sorted(b) for b in partition)
        assert [b[0] for b in partition] == sorted(b[0] for b in partition)
        key = frozenset(map(frozenset, partition))
        assert key not in seen, "duplicate partition"
        seen.add(key)
