"""Properties of the discrete-event message-passing runtime."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.netsim import default_comm_config
from repro.simmpi import World
from repro.topology import Cluster, dunnington


def make_world(n_ranks: int) -> World:
    cluster = Cluster("dunnington", dunnington())
    return World(cluster, default_comm_config(cluster), list(range(n_ranks)))


@given(
    n_ranks=st.integers(2, 8),
    edges=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_random_send_recv_patterns_complete(n_ranks, edges):
    """Any DAG-ordered message pattern must complete without deadlock
    and conserve message counts."""
    n_messages = edges.draw(st.integers(0, 12))
    msgs = []
    for k in range(n_messages):
        src = edges.draw(st.integers(0, n_ranks - 1), label=f"src{k}")
        dst = edges.draw(
            st.integers(0, n_ranks - 1).filter(lambda d: d != src), label=f"dst{k}"
        )
        size = edges.draw(st.sampled_from([64, 4096, 128 * 1024]), label=f"sz{k}")
        msgs.append((src, dst, size, k))

    world = make_world(n_ranks)

    def program(rank):
        # Sends in global order, then receives: with eager and
        # rendezvous mixed, ordering sends before receives per rank is
        # deadlock-free only if we interleave; so emit in global-k order
        # with matching tags, receives posted as wildcards afterwards.
        my_sends = [m for m in msgs if m[0] == rank.id]
        my_recvs = [m for m in msgs if m[1] == rank.id]
        for src, dst, size, k in my_sends:
            yield rank.send(dst, size, tag=k)
        for _ in my_recvs:
            yield rank.recv()

    world.spawn_all(program)
    # Rendezvous sends block, so a cycle of large sends could deadlock;
    # keep the test honest by ensuring the eager threshold covers all.
    if any(size > 64 * 1024 for _, _, size, _ in msgs):
        # Large messages use rendezvous: mutual large sends can truly
        # deadlock (as in real MPI).  Skip those patterns.
        return
    result = world.run()
    assert result.messages == len(msgs)
    assert result.bytes_sent == sum(m[2] for m in msgs)
    assert all(t >= 0 for t in result.finish_times.values())


@given(n_ranks=st.integers(2, 8), nbytes=st.sampled_from([64, 1024, 16384]))
@settings(max_examples=40, deadline=None)
def test_ring_makespan_positive_and_bounded(n_ranks, nbytes):
    world = make_world(n_ranks)

    def ring(rank):
        right = (rank.id + 1) % rank.size
        left = (rank.id - 1) % rank.size
        yield rank.send(right, nbytes, tag=rank.id)
        yield rank.recv(left, tag=left)

    world.spawn_all(ring)
    result = world.run()
    assert result.messages == n_ranks
    # The ring is fully parallel: makespan is far below the serial sum.
    per_msg = max(result.finish_times.values())
    assert result.makespan <= per_msg * 2


@given(n_ranks=st.integers(2, 6), seed=st.integers(0, 99))
@settings(max_examples=30, deadline=None)
def test_virtual_time_never_regresses(n_ranks, seed):
    """Each rank observes a non-decreasing clock across its own steps."""
    import random

    world = make_world(n_ranks)
    observed: dict[int, list[float]] = {r: [] for r in range(n_ranks)}

    def prog(rank):
        rnd = random.Random(seed + rank.id)
        partner = rank.id ^ 1  # pairs (0,1), (2,3), ...
        for step in range(3):
            observed[rank.id].append(rank.now)
            yield rank.compute(rnd.random() * 1e-6)
            if partner < rank.size:
                if rank.id % 2 == 0:
                    yield rank.send(partner, 128, tag=step)
                else:
                    yield rank.recv(partner, tag=step)
        observed[rank.id].append(rank.now)

    world.spawn_all(prog)
    result = world.run()
    for clocks in observed.values():
        assert clocks == sorted(clocks)
    assert result.makespan >= max(max(c) for c in observed.values()) - 1e-12
