"""Properties of the communication cost models."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.clustering import cluster_similar
from repro.netsim.model import LayerParams
from repro.units import KiB, MiB


@st.composite
def layer_params(draw):
    base = draw(st.floats(1e-7, 1e-4))
    bandwidth = draw(st.floats(1e8, 1e10))
    eager = draw(st.sampled_from([4 * KiB, 16 * KiB, 64 * KiB]))
    rdv = draw(st.floats(0.0, 1e-5))
    gamma = draw(st.floats(0.0, 0.5))
    spill = draw(st.booleans())
    kwargs = dict(
        name="p",
        base_latency=base,
        bandwidth=bandwidth,
        eager_threshold=eager,
        rendezvous_latency=rdv,
        contention_factor=gamma,
    )
    if spill:
        kwargs["cache_capacity"] = draw(st.sampled_from([1 * MiB, 4 * MiB]))
        kwargs["mem_bandwidth"] = draw(st.floats(1e7, bandwidth))
    return LayerParams(**kwargs)


@given(layer_params(), st.integers(0, 1 << 24), st.integers(1, 64))
@settings(max_examples=150, deadline=None)
def test_latency_positive_and_bounded_below_by_base(params, nbytes, conc):
    t = params.latency(nbytes, concurrency=conc)
    assert t >= params.base_latency > 0 or params.base_latency == 0


@given(layer_params(), st.integers(0, 1 << 22), st.integers(1, 32))
@settings(max_examples=150, deadline=None)
def test_latency_monotone_in_size(params, nbytes, conc):
    t1 = params.latency(nbytes, concurrency=conc)
    t2 = params.latency(nbytes + 4096, concurrency=conc)
    assert t2 >= t1 - 1e-15


@given(layer_params(), st.integers(1, 1 << 22), st.integers(1, 31))
@settings(max_examples=150, deadline=None)
def test_latency_monotone_in_concurrency(params, nbytes, conc):
    t1 = params.latency(nbytes, concurrency=conc)
    t2 = params.latency(nbytes, concurrency=conc + 1)
    assert t2 >= t1 - 1e-15


@given(layer_params(), st.integers(1, 1 << 22))
@settings(max_examples=100, deadline=None)
def test_bandwidth_never_exceeds_asymptotic(params, nbytes):
    achieved = params.point_to_point_bandwidth(nbytes)
    assert achieved <= params.bandwidth * (1 + 1e-12)


@given(
    st.lists(st.floats(1e-6, 1e-3), min_size=1, max_size=4, unique=True),
    st.integers(2, 30),
    st.integers(0, 1000),
)
@settings(max_examples=60, deadline=None)
def test_layer_clustering_recovers_separated_latencies(centers, per, seed):
    """Values drawn within 3% of well-separated centers cluster back
    into exactly one layer per center (the Fig. 7 guarantee)."""
    import random

    centers = sorted(centers)
    # Enforce pairwise separation of at least 60% (well beyond the 15%
    # clustering tolerance plus 3% jitter).
    for a, b in zip(centers, centers[1:]):
        if b < a * 1.6:
            return
    rnd = random.Random(seed)
    items = []
    for c_idx, center in enumerate(centers):
        for k in range(per):
            value = center * rnd.uniform(0.97, 1.03)
            items.append(((c_idx, k), value))
    rnd.shuffle(items)
    clusters = cluster_similar(items, rel_tol=0.15)
    assert len(clusters) == len(centers)
    for cluster in clusters:
        origins = {key[0] for key in cluster.members}
        assert len(origins) == 1  # no cluster mixes two true layers
