"""Unit tests for the tuning daemon: serving, batching, control, drain.

Everything runs over real loopback sockets against a report-backed
daemon (no registry, so no watcher thread) — the hot-reload behaviour
has its own integration drill in
``tests/integration/test_serviced_reload.py``.
"""

import socket
import struct
import threading

import pytest

from repro.autotune import Advisor
from repro.errors import ServicedError
from repro.service.server import (
    MatmulTileQuery,
    TileQuery,
    answer,
    default_query_pool,
)
from repro.serviced import ServicedClient, TuningDaemon
from repro.serviced.protocol import encode_frame


@pytest.fixture(scope="module")
def daemon(dunnington_report):
    with TuningDaemon(report=dunnington_report, workers=2) as d:
        yield d


@pytest.fixture
def client(daemon):
    with ServicedClient(daemon.host, daemon.port) as c:
        yield c


# -- serving correctness -------------------------------------------------


def test_every_pool_query_matches_uncached_reference(daemon, client, dunnington_report):
    reference = Advisor(dunnington_report)
    for query in default_query_pool(dunnington_report):
        assert client.query(query) == answer(reference, query)


def test_query_versioned_reports_file_snapshot(client):
    answer_dict, version = client.query_versioned(MatmulTileQuery(level=1))
    assert answer_dict["side"] > 0
    assert version == 0  # report-backed daemon serves version 0


def test_pipelined_query_many_lines_up(daemon, client, dunnington_report):
    pool = default_query_pool(dunnington_report)
    reference = Advisor(dunnington_report)
    results = client.query_many(pool * 3)
    assert len(results) == 3 * len(pool)
    for query, (got, _version) in zip(pool * 3, results):
        assert got == answer(reference, query)


def test_ping_reports_version_and_digest(client, daemon):
    pong = client.ping()
    assert pong["version"] == 0
    assert pong["digest"] == daemon.digest
    assert pong["draining"] is False


def test_stats_exposes_daemon_and_service_metrics(client, dunnington_report):
    client.query(TileQuery(level=1))
    stats = client.stats()
    assert stats["version"] == 0
    assert stats["service"]["queries"] >= 1
    counters = stats["daemon"]["counters"]
    assert counters['serviced.requests{kind="query"}'] >= 1
    assert counters['serviced.requests{kind="stats"}'] >= 1
    assert "serviced.request_latency_seconds" in stats["daemon"]["histograms"]


def test_batch_coalesces_identical_queries(dunnington_report):
    # White-box: hand one worker batch of 12 identical queries straight
    # to _process_batch — they must collapse to one service lookup, and
    # every client still gets its own response frame.
    from repro.serviced.daemon import _Connection
    from repro.serviced.protocol import read_frame

    d = TuningDaemon(report=dunnington_report, workers=1, batch_max=32)
    left, right = socket.socketpair()
    try:
        conn = _Connection(right)
        query = MatmulTileQuery(level=2)
        batch = [(conn, rid, query, 0.0) for rid in range(12)]
        for item in batch:
            d._queue.put(item)
        d._process_batch(batch)
        rfile = left.makefile("rb")
        responses = [read_frame(rfile.read) for _ in range(12)]
        assert sorted(r["id"] for r in responses) == list(range(12))
        assert len({str(r["answer"]) for r in responses}) == 1
        assert all(r["version"] == 0 for r in responses)
        assert d.metrics.value("counter", "service.queries", result="miss") == 1
        assert d.metrics.value("counter", "serviced.coalesced_requests") == 11
        assert d.metrics.value("histogram", "serviced.batch_size") == 1
    finally:
        left.close()
        right.close()


def test_error_answers_keep_worker_alive(client):
    # An out-of-range query must error the one request, not the daemon.
    with pytest.raises(ServicedError):
        client.query(TileQuery(level=99))
    assert client.query(MatmulTileQuery(level=1))["side"] > 0


def test_unknown_request_kind_is_diagnosed(daemon):
    with ServicedClient(daemon.host, daemon.port) as c:
        c._send(encode_frame({"kind": "teleport", "id": 1}))
        response = c._read_response()
    assert response["ok"] is False
    assert "unknown request kind" in response["error"]


def test_malformed_frame_gets_error_then_hangup(daemon):
    sock = socket.create_connection((daemon.host, daemon.port))
    rfile = sock.makefile("rb")
    body = b"{broken"
    sock.sendall(struct.pack(">I", len(body)) + body)
    header = rfile.read(4)
    (length,) = struct.unpack(">I", header)
    assert b"malformed frame payload" in rfile.read(length)
    assert rfile.read(1) == b""  # daemon hung up after diagnosing
    sock.close()


def test_oversize_frame_rejected_without_allocation(daemon):
    sock = socket.create_connection((daemon.host, daemon.port))
    rfile = sock.makefile("rb")
    sock.sendall(struct.pack(">I", (1 << 20) + 1))
    header = rfile.read(4)
    (length,) = struct.unpack(">I", header)
    assert b"exceeds" in rfile.read(length)
    sock.close()


# -- lifecycle -----------------------------------------------------------


def test_constructor_validates_shape(dunnington_report):
    with pytest.raises(ServicedError, match="exactly one"):
        TuningDaemon()
    with pytest.raises(ServicedError, match="workers"):
        TuningDaemon(report=dunnington_report, workers=0)
    with pytest.raises(ServicedError, match="batch_max"):
        TuningDaemon(report=dunnington_report, batch_max=0)


def test_drain_via_control_request_stops_daemon(dunnington_report):
    d = TuningDaemon(report=dunnington_report, workers=2).start()
    with ServicedClient(d.host, d.port) as c:
        c.drain()
    assert d.wait(timeout=10.0)
    assert d.draining


def test_drain_answers_inflight_then_refuses_new(dunnington_report):
    # Queries pipelined *before* the drain request on the same
    # connection must all be answered; queries after it are refused.
    d = TuningDaemon(report=dunnington_report, workers=1, batch_max=4).start()
    reference = Advisor(dunnington_report)
    pool = default_query_pool(dunnington_report)
    with ServicedClient(d.host, d.port) as c:
        results = c.query_many(pool)
        for query, (got, _v) in zip(pool, results):
            assert got == answer(reference, query)
        c.drain()
    assert d.wait(timeout=10.0)
    with pytest.raises(ServicedError, match="cannot connect|closed|send"):
        with ServicedClient(d.host, d.port) as late:
            late.query(pool[0])


def test_drain_is_idempotent(dunnington_report):
    d = TuningDaemon(report=dunnington_report).start()
    d.drain(wait=False)
    d.drain(wait=True, timeout=10.0)
    d.drain(wait=True, timeout=10.0)
    assert d.wait(0)


def test_concurrent_clients_all_match(daemon, dunnington_report):
    pool = default_query_pool(dunnington_report)
    reference = {str(q): answer(Advisor(dunnington_report), q) for q in pool}
    mismatches = []

    def hammer(seed):
        import random

        rng = random.Random(seed)
        with ServicedClient(daemon.host, daemon.port) as c:
            picks = [rng.choice(pool) for _ in range(40)]
            for query, (got, _v) in zip(picks, c.query_many(picks)):
                if got != reference[str(query)]:
                    mismatches.append(query)

    threads = [threading.Thread(target=hammer, args=(s,)) for s in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not mismatches


def test_uninstrumented_daemon_serves_and_skips_metrics(dunnington_report):
    with TuningDaemon(report=dunnington_report, instrument=False) as d:
        with ServicedClient(d.host, d.port) as c:
            assert c.query(MatmulTileQuery(level=1))["side"] > 0
            stats = c.stats()
    assert "daemon" not in stats
    assert d.metrics.value("counter", "serviced.requests", kind="query") == 0
