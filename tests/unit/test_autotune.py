"""Unit tests for the autotuning consumers."""

import numpy as np
import pytest

from repro.autotune import (
    Advisor,
    aggregation_advice,
    compact_placement,
    matmul_plan,
    matmul_tile_side,
    matmul_traffic,
    optimize_placement,
    placement_cost,
    scatter_placement,
    tile_elements,
)
from repro.errors import ReproError

from .test_core_report import sample_report


class TestTiling:
    def test_tile_elements_formula(self):
        report = sample_report()  # L1 32KB
        assert tile_elements(report, 1, n_arrays=2, elem_size=8) == 1024

    def test_matmul_tile_side(self):
        report = sample_report()
        side = matmul_tile_side(report, 1, elem_size=8)
        assert 3 * side * side * 8 <= 32768 * 0.5
        assert 3 * (side + 2) * (side + 2) * 8 > 32768 * 0.5

    def test_plan_covers_all_levels(self):
        plan = matmul_plan(sample_report())
        assert set(plan.sides) == {1, 2}
        assert plan.innermost() < plan.outermost()

    def test_unknown_level_raises(self):
        with pytest.raises(ReproError):
            tile_elements(sample_report(), 5, 2, 8)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ReproError):
            tile_elements(sample_report(), 1, 2, 8, fill_fraction=0.0)

    def test_traffic_model_tiled_beats_naive(self):
        naive = matmul_traffic(1024, None)
        tiled = matmul_traffic(1024, 64)
        assert naive / tiled > 10

    def test_traffic_huge_tile_equals_naive(self):
        assert matmul_traffic(256, 512) == matmul_traffic(256, None)

    def test_traffic_rejects_bad_args(self):
        with pytest.raises(ReproError):
            matmul_traffic(0, 8)
        with pytest.raises(ReproError):
            matmul_traffic(64, 0)


class TestPlacementBasics:
    def test_compact(self):
        assert compact_placement(4) == [0, 1, 2, 3]

    def test_scatter_no_collisions(self):
        placement = scatter_placement(5, 16)
        assert len(set(placement)) == 5

    def test_scatter_too_many_ranks(self):
        with pytest.raises(ReproError):
            scatter_placement(10, 4)


class TestPlacementCost:
    def matrix(self):
        m = np.zeros((4, 4))
        m[0, 1] = m[1, 0] = 10.0
        m[2, 3] = m[3, 2] = 10.0
        return m

    def test_cost_prefers_fast_layers(self):
        report = sample_report()
        # Layer 0 serves (0,1),(2,3); layer 1 the cross pairs.
        fast = placement_cost(report, [0, 1, 2, 3], self.matrix(), 1024)
        slow = placement_cost(report, [0, 2, 1, 3], self.matrix(), 1024)
        assert fast < slow

    def test_memory_weight_penalizes_contending_pairs(self):
        report = sample_report()
        m = np.zeros((2, 2))
        base = placement_cost(report, [0, 1], m, 1024)
        with_mem = placement_cost(report, [0, 1], m, 1024, memory_weight=1.0)
        assert with_mem > base  # (0,1) is in a memory overhead group

    def test_rejects_duplicate_cores(self):
        with pytest.raises(ReproError):
            placement_cost(sample_report(), [0, 0], np.zeros((2, 2)))

    def test_rejects_non_square_matrix(self):
        with pytest.raises(ReproError):
            placement_cost(sample_report(), [0, 1], np.zeros((2, 3)))

    def test_rejects_negative_traffic(self):
        with pytest.raises(ReproError):
            placement_cost(sample_report(), [0, 1], np.array([[0, -1], [0, 0]]))


class TestOptimizePlacement:
    def test_never_worse_than_compact(self):
        report = sample_report()
        result = optimize_placement(report, self_matrix())
        assert result.cost <= result.baseline_cost

    def test_finds_the_fast_pairs(self):
        report = sample_report()
        # Ranks 0-1 talk a lot; they should land on a layer-0 pair.
        # (message_size stays inside layer 0's characterized sweep —
        # beyond it the extrapolation legitimately crosses layer 1.)
        m = np.zeros((2, 2))
        m[0, 1] = m[1, 0] = 100.0
        result = optimize_placement(report, m, message_size=1024)
        a, b = sorted(result.placement)
        assert (a, b) in {(0, 1), (2, 3)}

    def test_too_many_ranks_rejected(self):
        with pytest.raises(ReproError):
            optimize_placement(sample_report(), np.zeros((9, 9)))


def self_matrix():
    m = np.zeros((4, 4))
    m[0, 1] = m[1, 0] = 10.0
    m[2, 3] = m[3, 2] = 10.0
    return m


class TestAggregation:
    def test_poorly_scalable_layer_prefers_aggregation(self):
        layer = sample_report().comm_layers[0]  # steep scalability
        advice = aggregation_advice(layer, n_messages=4, message_size=1024)
        assert advice.aggregate
        assert advice.speedup > 1.0

    def test_single_message_never_aggregates(self):
        layer = sample_report().comm_layers[0]
        advice = aggregation_advice(layer, n_messages=1, message_size=1024)
        assert not advice.aggregate  # packing overhead only hurts

    def test_rejects_bad_args(self):
        layer = sample_report().comm_layers[0]
        with pytest.raises(ReproError):
            aggregation_advice(layer, 0, 1024)


class TestAdvisor:
    def test_from_file_roundtrip(self, tmp_path):
        report = sample_report()
        path = tmp_path / "r.json"
        report.save(path)
        advisor = Advisor.from_file(path)
        assert advisor.report == report

    def test_max_useful_streaming_cores(self):
        advisor = Advisor(sample_report())
        # scalability [3e9, 2e9] with ref 3e9: the 2nd core only adds
        # (2*2e9 - 3e9)/3e9 = 0.33 of a core -> not worth it at 0.5.
        assert advisor.max_useful_streaming_cores() == 1
        assert advisor.max_useful_streaming_cores(efficiency_floor=0.2) == 2

    def test_should_aggregate_uses_pair_layer(self):
        advisor = Advisor(sample_report())
        advice = advisor.should_aggregate(0, 1, 4, 1024)
        assert advice.layer_index == 0

    def test_place_delegates(self):
        advisor = Advisor(sample_report())
        result = advisor.place(self_matrix())
        assert result.cost <= result.baseline_cost
