"""Unit tests for :mod:`repro.memsim.paging`."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.memsim.paging import (
    AddressSpace,
    ColoredPaging,
    ContiguousPaging,
    PagePolicy,
    RandomPaging,
    _has_duplicates,
)
from repro.units import KiB


def rng():
    return np.random.default_rng(123)


class DuplicatingPolicy(PagePolicy):
    """A broken user policy: maps every virtual page to frame 0."""

    def place(self, n_pages, rng):
        self._check(n_pages)
        return np.zeros(n_pages, dtype=np.int64)


class LyingPolicy(DuplicatingPolicy):
    """Duplicates frames while claiming it cannot."""

    guarantees_distinct_frames = True


class TestRandomPaging:
    def test_places_distinct_pages(self):
        pages = RandomPaging(physical_pages=4096).place(1000, rng())
        assert len(np.unique(pages)) == 1000
        assert pages.min() >= 0 and pages.max() < 4096

    def test_rejects_overcommit(self):
        with pytest.raises(SimulationError):
            RandomPaging(physical_pages=10).place(11, rng())

    def test_rejects_zero_pages(self):
        with pytest.raises(SimulationError):
            RandomPaging().place(0, rng())

    def test_uniformity_over_colors(self):
        # Chi-square-ish sanity: 64 colors, many pages, no color starved.
        pages = RandomPaging(physical_pages=1 << 20).place(6400, rng())
        counts = np.bincount(pages % 64, minlength=64)
        assert counts.min() > 50  # mean is 100

    def test_invalid_physical_pages(self):
        with pytest.raises(ConfigurationError):
            RandomPaging(physical_pages=0)


class TestColoredPaging:
    def test_preserves_virtual_color(self):
        policy = ColoredPaging(n_colors=16, physical_pages=1 << 16)
        pages = policy.place(640, rng())
        vcolors = np.arange(640) % 16
        assert np.array_equal(pages % 16, vcolors)
        assert len(np.unique(pages)) == 640

    def test_rejects_bad_color_count(self):
        with pytest.raises(ConfigurationError):
            ColoredPaging(n_colors=7, physical_pages=1 << 16)  # must divide


class TestContiguousPaging:
    def test_contiguity(self):
        pages = ContiguousPaging(physical_pages=1 << 16).place(100, rng())
        assert np.array_equal(np.diff(pages), np.ones(99, dtype=np.int64))


class TestAddressSpace:
    def test_physical_lines_follow_page_table(self):
        space = AddressSpace(4 * KiB, ContiguousPaging(), 8 * KiB, rng())
        base = space.page_table[0]
        lines = space.physical_lines(np.array([0, 64, 4096]), 64)
        assert lines[0] == base * 64
        assert lines[1] == base * 64 + 1
        assert lines[2] == (base + 1) * 64

    def test_virtual_lines(self):
        space = AddressSpace(4 * KiB, RandomPaging(), 8 * KiB, rng())
        assert list(space.virtual_lines(np.array([0, 63, 64, 1024]), 64)) == [
            0,
            0,
            1,
            16,
        ]

    def test_rejects_out_of_range_addresses(self):
        space = AddressSpace(4 * KiB, RandomPaging(), 4 * KiB, rng())
        with pytest.raises(SimulationError):
            space.physical_lines(np.array([4096]), 64)

    def test_rejects_non_power_of_two_page(self):
        with pytest.raises(ConfigurationError):
            AddressSpace(3000, RandomPaging(), 8 * KiB, rng())

    def test_page_count_rounds_up(self):
        space = AddressSpace(4 * KiB, RandomPaging(), 5 * KiB, rng())
        assert space.n_pages == 2


class TestDuplicateValidation:
    def test_user_policy_with_duplicates_raises(self):
        # User-supplied policies default to guarantees_distinct_frames
        # == False, so the construction-time check must still catch a
        # genuinely duplicating placement.
        with pytest.raises(SimulationError, match="duplicate"):
            AddressSpace(4 * KiB, DuplicatingPolicy(), 8 * KiB, rng())

    def test_builtin_policies_skip_check_but_forced_check_works(self):
        # A policy that *claims* distinctness skips validation by
        # default; validate=True forces the check regardless.
        AddressSpace(4 * KiB, LyingPolicy(), 8 * KiB, rng())  # no raise
        with pytest.raises(SimulationError, match="duplicate"):
            AddressSpace(4 * KiB, LyingPolicy(), 8 * KiB, rng(), validate=True)

    def test_validate_false_disables_check(self):
        space = AddressSpace(
            4 * KiB, DuplicatingPolicy(), 8 * KiB, rng(), validate=False
        )
        assert space.n_pages == 2

    def test_has_duplicates_dense_path(self):
        # Value range small enough to bincount.
        assert _has_duplicates(np.array([5, 6, 7, 6], dtype=np.int64))
        assert not _has_duplicates(np.array([5, 6, 7, 8], dtype=np.int64))

    def test_has_duplicates_sparse_path(self):
        # Range >> size: falls back to the set-based check.
        huge = np.array([0, 10**12, 2 * 10**12], dtype=np.int64)
        assert not _has_duplicates(huge)
        assert _has_duplicates(np.array([0, 10**12, 0], dtype=np.int64))

    def test_trivial_sizes(self):
        assert not _has_duplicates(np.array([], dtype=np.int64))
        assert not _has_duplicates(np.array([3], dtype=np.int64))
