"""Unit tests for :mod:`repro.resilience` (faults, policy, checkpoint)."""

import json
import math

import pytest

from repro.backends.base import Backend, ConcurrentLatency
from repro.errors import (
    CheckpointError,
    ConfigurationError,
    MeasurementError,
    MeasurementTimeout,
)
from repro.resilience import (
    FaultInjectingBackend,
    FaultPlan,
    HardenedBackend,
    ReadingBounds,
    ResiliencePolicy,
    RetryPolicy,
    SamplingPolicy,
    SuiteCheckpoint,
    relative_spread,
    robust_estimate,
)


class ScriptedBackend(Backend):
    """Backend whose readings come from per-channel callables/values."""

    def __init__(self, cycles=10.0, bandwidth=1e9, latency=1e-6, n_cores=4):
        self.name = "scripted"
        self.n_cores = n_cores
        self.page_size = 4096
        self.virtual_time = 0.0
        self.cycles = cycles
        self.bandwidth = bandwidth
        self.latency = latency
        self.calls = 0
        self.cluster = "sentinel-cluster"

    def _value(self, scripted):
        return scripted(self.calls) if callable(scripted) else scripted

    def traversal_cycles(self, arrays, stride):
        self.calls += 1
        return {core: self._value(self.cycles) for core, _ in arrays}

    def copy_bandwidth(self, cores):
        self.calls += 1
        return {core: self._value(self.bandwidth) for core in cores}

    def message_latency(self, core_a, core_b, nbytes):
        self.calls += 1
        return self._value(self.latency)

    def concurrent_message_latency(self, pairs, nbytes):
        self.calls += 1
        value = self._value(self.latency)
        return ConcurrentLatency(mean=value, worst=value)


# -- robust statistics -----------------------------------------------------


class TestRobustStats:
    def test_median_odd_and_even(self):
        assert robust_estimate([3.0, 1.0, 2.0]) == 2.0
        assert robust_estimate([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_median_survives_outlier(self):
        assert robust_estimate([10.0, 10.1, 500.0]) == 10.1

    def test_trimmed_mean_drops_tails(self):
        values = [1.0, 10.0, 10.0, 10.0, 100.0]
        assert robust_estimate(values, "trimmed_mean", trim_fraction=0.2) == 10.0

    def test_trimmed_mean_falls_back_to_mean_when_tiny(self):
        assert robust_estimate([4.0, 6.0], "trimmed_mean", 0.4) == 5.0

    def test_unknown_estimator_rejected(self):
        with pytest.raises(ConfigurationError):
            robust_estimate([1.0], estimator="mode")

    def test_empty_rejected(self):
        with pytest.raises(MeasurementError):
            robust_estimate([])

    def test_relative_spread(self):
        assert relative_spread([10.0]) == 0.0
        assert relative_spread([10.0, 10.0]) == 0.0
        assert relative_spread([8.0, 10.0, 12.0]) == pytest.approx(0.4)


# -- fault plans -----------------------------------------------------------


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(nan_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultPlan(nan_rate=0.6, zero_rate=0.6)

    def test_unknown_channel_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(only=("timers",))

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            seed=3,
            nan_rate=0.1,
            spike_rate=0.05,
            dead_cores=(3, 1),
            lockup_after=10,
            only=("latency",),
        )
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan
        # dead_cores normalized to a sorted tuple
        assert plan.dead_cores == (1, 3)

    def test_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            FaultPlan.load(path)
        path.write_text(json.dumps({"frobnicate": 1}))
        with pytest.raises(ConfigurationError):
            FaultPlan.load(path)


class TestFaultInjectingBackend:
    def test_no_faults_is_transparent(self):
        inner = ScriptedBackend()
        backend = FaultInjectingBackend(inner, FaultPlan())
        assert backend.traversal_cycles([(0, 1024)], 64) == {0: 10.0}
        assert backend.message_latency(0, 1, 64) == 1e-6
        assert backend.cluster == "sentinel-cluster"  # attribute delegation

    def test_deterministic_for_seed(self):
        def run(seed):
            backend = FaultInjectingBackend(
                ScriptedBackend(), FaultPlan(seed=seed, nan_rate=0.3)
            )
            return [
                math.isnan(backend.message_latency(0, 1, 64)) for _ in range(50)
            ]

        assert run(11) == run(11)
        assert run(11) != run(12)

    def test_nan_zero_negative_spike(self):
        for kwargs, check in [
            ({"nan_rate": 1.0}, math.isnan),
            ({"zero_rate": 1.0}, lambda v: v == 0.0),
            ({"negative_rate": 1.0}, lambda v: v == -10.0),
            ({"spike_rate": 1.0, "spike_factor": 3.0}, lambda v: v == 30.0),
        ]:
            backend = FaultInjectingBackend(ScriptedBackend(), FaultPlan(**kwargs))
            value = backend.traversal_cycles([(0, 1024)], 64)[0]
            assert check(value), (kwargs, value)

    def test_dead_cores_poison_their_readings_only(self):
        backend = FaultInjectingBackend(
            ScriptedBackend(), FaultPlan(dead_cores=(2,))
        )
        readings = backend.copy_bandwidth([0, 1, 2, 3])
        assert math.isnan(readings[2])
        assert readings[0] == 1e9 and readings[3] == 1e9

    def test_lockup_returns_constant_after_threshold(self):
        backend = FaultInjectingBackend(
            ScriptedBackend(), FaultPlan(lockup_after=2, lockup_value=7.0)
        )
        assert backend.message_latency(0, 1, 64) == 1e-6
        assert backend.message_latency(0, 1, 64) == 1e-6
        assert backend.message_latency(0, 1, 64) == 7.0
        assert backend.message_latency(0, 1, 64) == 7.0

    def test_hang_charges_virtual_time_and_raises(self):
        backend = FaultInjectingBackend(
            ScriptedBackend(), FaultPlan(hang_rate=1.0, hang_seconds=30.0)
        )
        with pytest.raises(MeasurementTimeout) as err:
            backend.copy_bandwidth([0])
        assert err.value.waited == 30.0
        assert backend.take_virtual_time() == 30.0

    def test_channel_restriction(self):
        backend = FaultInjectingBackend(
            ScriptedBackend(), FaultPlan(nan_rate=1.0, only=("bandwidth",))
        )
        assert math.isnan(backend.copy_bandwidth([0])[0])
        assert backend.message_latency(0, 1, 64) == 1e-6
        assert backend.traversal_cycles([(0, 1024)], 64)[0] == 10.0

    def test_virtual_time_forwards_to_inner(self):
        inner = ScriptedBackend()
        backend = FaultInjectingBackend(inner, FaultPlan())
        backend.charge(5.0)
        assert inner.virtual_time == 5.0
        assert backend.take_virtual_time() == 5.0
        assert inner.virtual_time == 0.0


# -- hardening policy ------------------------------------------------------


class TestPolicyValidation:
    def test_retry_policy_validated(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0)
        assert policy.backoff(0) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.4)

    def test_sampling_policy_validated(self):
        with pytest.raises(ConfigurationError):
            SamplingPolicy(samples=0)
        with pytest.raises(ConfigurationError):
            SamplingPolicy(estimator="mode")
        with pytest.raises(ConfigurationError):
            SamplingPolicy(trim_fraction=0.5)

    def test_bounds_problems(self):
        bounds = ReadingBounds(lo=1.0, hi=100.0)
        assert bounds.problem(50.0) is None
        assert "NaN" in bounds.problem(float("nan"))
        assert "infinite" in bounds.problem(float("inf"))
        assert "non-positive" in bounds.problem(0.0)
        assert "small" in bounds.problem(0.5)
        assert "large" in bounds.problem(1e6)


class TestHardenedBackend:
    def test_transparent_for_healthy_backend(self):
        backend = HardenedBackend(ScriptedBackend())
        assert backend.traversal_cycles([(0, 1024)], 64) == {0: 10.0}
        result = backend.concurrent_message_latency([(0, 1)], 64)
        assert result.mean == 1e-6
        assert backend.total_incidents == 0
        assert backend.cluster == "sentinel-cluster"

    def test_transient_nan_recovered_by_retry(self):
        # First reading NaN, later ones healthy.
        inner = ScriptedBackend(
            cycles=lambda call: float("nan") if call <= 1 else 10.0
        )
        backend = HardenedBackend(
            inner, ResiliencePolicy(retry=RetryPolicy(max_attempts=3))
        )
        assert backend.traversal_cycles([(0, 1024)], 64) == {0: 10.0}
        incidents = backend.take_incidents()
        assert incidents["retries"] == 1
        assert incidents["invalid_readings"] == 1
        assert backend.total_incidents == 0  # reset by take

    def test_backoff_charged_to_virtual_time(self):
        inner = ScriptedBackend(
            latency=lambda call: float("nan") if call <= 2 else 1e-6
        )
        backend = HardenedBackend(
            inner,
            ResiliencePolicy(
                retry=RetryPolicy(max_attempts=3, backoff_base=0.5, backoff_factor=2.0)
            ),
        )
        assert backend.message_latency(0, 1, 64) == 1e-6
        # two retries: backoff 0.5 + 1.0
        assert backend.take_virtual_time() == pytest.approx(1.5)

    def test_persistent_fault_exhausts_retries(self):
        backend = HardenedBackend(
            ScriptedBackend(bandwidth=float("nan")),
            ResiliencePolicy(retry=RetryPolicy(max_attempts=4)),
        )
        with pytest.raises(MeasurementError, match="after 4 attempt"):
            backend.copy_bandwidth([0, 1])
        assert backend.incidents["retries"] == 3

    def test_timeouts_are_retried(self):
        calls = {"n": 0}

        class Hanging(ScriptedBackend):
            def copy_bandwidth(self, cores):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise MeasurementTimeout("hung", waited=10.0)
                return super().copy_bandwidth(cores)

        backend = HardenedBackend(
            Hanging(), ResiliencePolicy(retry=RetryPolicy(max_attempts=2))
        )
        assert backend.copy_bandwidth([0]) == {0: 1e9}
        assert backend.incidents["timeouts"] == 1

    def test_implausible_reading_rejected(self):
        backend = HardenedBackend(
            ScriptedBackend(latency=1e9),  # a 31-year "latency"
            ResiliencePolicy(retry=RetryPolicy(max_attempts=1)),
        )
        with pytest.raises(MeasurementError, match="implausibly large"):
            backend.message_latency(0, 1, 64)

    def test_median_sampling_rejects_spike(self):
        inner = ScriptedBackend(
            cycles=lambda call: 500.0 if call == 2 else 10.0
        )
        backend = HardenedBackend(
            inner,
            ResiliencePolicy(
                sampling=SamplingPolicy(samples=3, spread_gate=None)
            ),
        )
        assert backend.traversal_cycles([(0, 1024)], 64) == {0: 10.0}

    def test_spread_gate_triggers_resampling(self):
        # Samples 1..3 wildly spread, later ones stable: the gate should
        # request extras and the median should land on a stable value.
        inner = ScriptedBackend(
            bandwidth=lambda call: {1: 1e9, 2: 5e9, 3: 1e10}.get(call, 2e9)
        )
        backend = HardenedBackend(
            inner,
            ResiliencePolicy(
                sampling=SamplingPolicy(
                    samples=3, spread_gate=0.5, max_extra_samples=2
                )
            ),
        )
        value = backend.copy_bandwidth([0])[0]
        assert backend.incidents["resamples"] == 2
        assert value == pytest.approx(2e9)


# -- checkpoints -----------------------------------------------------------


class TestSuiteCheckpoint:
    def test_round_trip(self, tmp_path):
        ckpt = SuiteCheckpoint(
            fingerprint={"system": "toy", "n_cores": 4},
            completed=["cache_size"],
            status={"cache_size": "ok"},
            errors={},
            report={"system": "toy"},
            timings={"cache_size": (10.0, 0.1)},
            rng_state={"bit_generator": "PCG64", "state": {"state": 1, "inc": 2}},
        )
        path = tmp_path / "ckpt.json"
        ckpt.save(path)
        loaded = SuiteCheckpoint.load(path)
        assert loaded == ckpt
        assert loaded.matches({"system": "toy", "n_cores": 4})
        assert not loaded.matches({"system": "other", "n_cores": 4})

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "ckpt.json"
        ckpt = SuiteCheckpoint(fingerprint={})
        data = ckpt.to_dict()
        data["version"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointError):
            SuiteCheckpoint.load(path)

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("{truncated")
        with pytest.raises(CheckpointError):
            SuiteCheckpoint.load(path)
