"""Unit tests for the explicit LRU cache simulator."""

import pytest

from repro.errors import ConfigurationError
from repro.memsim.cache import (
    MultiLevelSimulator,
    SetAssociativeCache,
    TraceAccess,
    interleave_round_robin,
)
from repro.topology import generic_smp


class TestSetAssociativeCache:
    def test_hit_after_install(self):
        cache = SetAssociativeCache(num_sets=4, ways=2)
        assert cache.access(0, "a") is False
        assert cache.access(0, "a") is True

    def test_lru_eviction_order(self):
        cache = SetAssociativeCache(num_sets=1, ways=2)
        cache.access(0, "a")
        cache.access(0, "b")
        cache.access(0, "a")  # refreshes a; b is now LRU
        cache.access(0, "c")  # evicts b
        assert cache.contains(0, "a")
        assert not cache.contains(0, "b")
        assert cache.contains(0, "c")

    def test_cyclic_thrash_with_ways_plus_one(self):
        cache = SetAssociativeCache(num_sets=1, ways=2)
        sequence = ["a", "b", "c"] * 5
        hits = [cache.access(0, key) for key in sequence]
        assert not any(hits)  # the classic LRU pathology

    def test_cyclic_all_hits_within_ways(self):
        cache = SetAssociativeCache(num_sets=1, ways=3)
        sequence = ["a", "b", "c"] * 3
        hits = [cache.access(0, key) for key in sequence]
        assert hits[3:] == [True] * 6

    def test_set_indices_wrap(self):
        cache = SetAssociativeCache(num_sets=4, ways=1)
        cache.access(6, "x")
        assert cache.contains(2, "x")

    def test_occupancy_and_flush(self):
        cache = SetAssociativeCache(num_sets=2, ways=2)
        cache.access(0, "a")
        cache.access(0, "b")
        assert cache.occupancy(0) == 2
        cache.flush()
        assert cache.occupancy(0) == 0

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(num_sets=0, ways=1)


class TestMultiLevelSimulator:
    def machine(self):
        return generic_smp(
            n_cores=2,
            levels=[("4KB", 2, 1, 3.0), ("16KB", 4, 2, 10.0)],
            mem_latency=100.0,
        )

    def test_first_access_costs_full_miss(self):
        sim = MultiLevelSimulator(self.machine())
        cycles, hit_level = sim.access(TraceAccess(core=0, vline=0, pline=0))
        assert hit_level is None
        assert cycles == 3.0 + 10.0 + 100.0

    def test_second_access_hits_l1(self):
        sim = MultiLevelSimulator(self.machine())
        sim.access(TraceAccess(0, 0, 0))
        cycles, hit_level = sim.access(TraceAccess(0, 0, 0))
        assert hit_level == 1
        assert cycles == 3.0

    def test_distinct_cores_do_not_alias_in_shared_l2(self):
        sim = MultiLevelSimulator(self.machine())
        sim.access(TraceAccess(0, 7, 7))
        cycles, hit_level = sim.access(TraceAccess(1, 7, 7))
        # Same line numbers but different cores: the shared L2 keeps
        # both as distinct lines, so this is a cold miss.
        assert hit_level is None

    def test_run_measures_only_last_round(self):
        sim = MultiLevelSimulator(self.machine())
        trace = [TraceAccess(0, i, i) for i in range(2)]
        outcome = sim.run(trace, rounds=3, measure_last_round_only=True)
        assert outcome.accesses[0] == 2
        assert outcome.per_level[0].miss_rate == 0.0  # warm by round 3
        assert outcome.cycles_per_access[0] == 3.0


def test_interleave_round_robin_equal_lengths():
    a = [TraceAccess(0, i, i) for i in range(3)]
    b = [TraceAccess(1, i, i) for i in range(3)]
    merged = interleave_round_robin([a, b])
    assert [t.core for t in merged] == [0, 1, 0, 1, 0, 1]


def test_interleave_round_robin_unequal_lengths_cycles_shorter():
    a = [TraceAccess(0, i, i) for i in range(4)]
    b = [TraceAccess(1, 0, 0)]
    merged = interleave_round_robin([a, b])
    assert len(merged) == 8
    assert all(t.vline == 0 for t in merged if t.core == 1)


def test_interleave_empty():
    assert interleave_round_robin([]) == []
