"""Unit tests for :mod:`repro.netsim`."""

import pytest

from repro.errors import ConfigurationError, MeasurementError
from repro.netsim import LayerParams, CommConfig, default_comm_config, true_layers
from repro.topology import Cluster, dunnington, finis_terrae, generic_smp
from repro.units import KiB, MiB


def layer(**kw):
    defaults = dict(
        name="test",
        base_latency=1e-6,
        bandwidth=1e9,
        eager_threshold=64 * KiB,
        rendezvous_latency=5e-7,
        contention_factor=0.1,
    )
    defaults.update(kw)
    return LayerParams(**defaults)


class TestLayerParams:
    def test_latency_is_affine_in_size(self):
        p = layer()
        t1 = p.latency(1000)
        t2 = p.latency(2000)
        assert t2 - t1 == pytest.approx(1000 / 1e9)

    def test_zero_byte_latency_is_base(self):
        assert layer().latency(0) == pytest.approx(1e-6)

    def test_rendezvous_switch_adds_handshake(self):
        p = layer()
        below = p.latency(64 * KiB)
        above = p.latency(64 * KiB + 1)
        assert above - below == pytest.approx(5e-7 + 1 / 1e9)

    def test_cache_spill_reduces_bandwidth(self):
        p = layer(cache_capacity=1 * MiB, mem_bandwidth=0.5e9)
        assert p.effective_bandwidth(1 * MiB) == 1e9
        assert p.effective_bandwidth(1 * MiB + 1) == 0.5e9

    def test_contention_inflates_transfer_only(self):
        p = layer()
        t1 = p.latency(10_000, concurrency=1)
        t4 = p.latency(10_000, concurrency=4)
        transfer = 10_000 / 1e9
        assert t4 - t1 == pytest.approx(transfer * 0.1 * 3)

    def test_point_to_point_bandwidth(self):
        p = layer()
        nbytes = 1 * MiB
        assert p.point_to_point_bandwidth(nbytes) == pytest.approx(
            nbytes / p.latency(nbytes)
        )

    def test_rejects_negative_size(self):
        with pytest.raises(MeasurementError):
            layer().latency(-1)

    def test_rejects_zero_concurrency(self):
        with pytest.raises(MeasurementError):
            layer().latency(100, concurrency=0)

    def test_rejects_mismatched_spill_params(self):
        with pytest.raises(ConfigurationError):
            layer(cache_capacity=1 * MiB)  # no mem_bandwidth


class TestCommConfig:
    def test_lookup_by_relationship(self):
        config = CommConfig({"same-node": layer(name="same-node")})
        assert config.params_for_relationship("same-node").name == "same-node"
        with pytest.raises(ConfigurationError):
            config.params_for_relationship("inter-node")

    def test_validate_against_detects_missing(self):
        ft = finis_terrae(2)
        config = CommConfig({"same-node": layer()})
        with pytest.raises(ConfigurationError):
            config.validate_against(ft)


class TestPresets:
    def test_dunnington_has_three_layers(self):
        dn = Cluster("dunnington", dunnington())
        config = default_comm_config(dn)
        assert set(config.layers) == {"shared-l2", "shared-l3", "same-node"}
        # Ordering: closer sharing must be faster at the probe size.
        probe = 32 * KiB
        t = {k: config.layers[k].latency(probe) for k in config.layers}
        assert t["shared-l2"] < t["shared-l3"] < t["same-node"]

    def test_finis_terrae_intra_layers_cost_identically(self):
        ft = finis_terrae(2)
        config = default_comm_config(ft)
        probe = 16 * KiB
        assert config.layers["same-cell"].latency(probe) == pytest.approx(
            config.layers["same-node"].latency(probe)
        )
        # ...and inter-node is about 2x slower (paper Fig. 10a).
        ratio = config.layers["inter-node"].latency(probe) / config.layers[
            "same-node"
        ].latency(probe)
        assert 1.7 < ratio < 2.3

    def test_generic_fallback_covers_all_relationships(self):
        m = generic_smp(n_cores=4, levels=[("32KB", 8, 1, 3.0), ("2MB", 8, 2, 15.0)])
        cluster = Cluster(m.name, m)
        config = default_comm_config(cluster)
        config.validate_against(cluster)


class TestTrueLayers:
    def test_dunnington_counts(self):
        dn = Cluster("dunnington", dunnington())
        layers = true_layers(dn, default_comm_config(dn))
        sizes = {name: len(pairs) for name, pairs in layers.items()}
        assert sizes == {"shared-l2": 12, "shared-l3": 48, "same-node": 216}

    def test_finis_terrae_merges_identical_layers(self):
        ft = finis_terrae(2)
        layers = true_layers(ft, default_comm_config(ft))
        assert set(layers) == {"same-cell|same-node", "inter-node"}
        assert len(layers["same-cell|same-node"]) == 240
        assert len(layers["inter-node"]) == 256

    def test_partition_is_complete_and_disjoint(self):
        ft = finis_terrae(2)
        layers = true_layers(ft, default_comm_config(ft))
        everything = [p for pairs in layers.values() for p in pairs]
        assert len(everything) == len(set(everything)) == 32 * 31 // 2
