"""Unit tests for the measurement planner (plan / symmetry / executor)."""

from __future__ import annotations

import pytest

from repro import SimulatedBackend, dunnington, finis_terrae
from repro.backends.base import Backend, ConcurrentLatency
from repro.errors import ConfigurationError
from repro.planner import (
    ConcurrentMessageProbe,
    MeasurementPlan,
    MessageProbe,
    PairClass,
    PlanExecutor,
    PlanStep,
    PlannerStats,
    StreamProbe,
    TopologyClassifier,
    TraversalProbe,
    classifier_for,
    probe_cores,
    validate_prune_mode,
)
from repro.topology.machine import all_pairs


class CountingBackend(Backend):
    """Deterministic fake backend that counts every measurement."""

    wall_clock_bound = False

    def __init__(self, n_cores: int = 8) -> None:
        self.name = "counting"
        self.n_cores = n_cores
        self.page_size = 4096
        self.calls: list[tuple] = []

    def traversal_cycles(self, arrays, stride):
        self.calls.append(("traversal", tuple(arrays), stride))
        return {core: 10.0 + core for core, _ in arrays}

    def copy_bandwidth(self, cores):
        self.calls.append(("bandwidth", tuple(cores)))
        return {core: 1e9 / (1 + len(cores)) + core for core in cores}

    def message_latency(self, core_a, core_b, nbytes):
        self.calls.append(("latency", core_a, core_b, nbytes))
        return 1e-6 * nbytes * (1 + abs(core_a - core_b) % 3)

    def concurrent_message_latency(self, pairs, nbytes):
        self.calls.append(("concurrent", tuple(pairs), nbytes))
        lat = 1e-6 * nbytes * len(pairs)
        return ConcurrentLatency(mean=lat, worst=1.5 * lat)


class TestPlanRepresentation:
    def test_probes_are_hashable_value_objects(self):
        a = MessageProbe(pair=(0, 1), nbytes=1024)
        b = MessageProbe(pair=(0, 1), nbytes=1024)
        assert a == b and hash(a) == hash(b)
        assert a != MessageProbe(pair=(0, 1), nbytes=1024, sample=1)

    def test_probe_cores(self):
        assert probe_cores(TraversalProbe(arrays=((2, 64), (5, 64)), stride=8)) == (2, 5)
        assert probe_cores(StreamProbe(cores=(1, 3))) == (1, 3)
        assert probe_cores(MessageProbe(pair=(0, 4), nbytes=8)) == (0, 4)
        assert probe_cores(
            ConcurrentMessageProbe(pairs=((0, 1), (2, 3)), nbytes=8)
        ) == (0, 1, 2, 3)

    def test_plan_rejects_unknown_dependency(self):
        plan = MeasurementPlan()
        ghost = MessageProbe(pair=(0, 1), nbytes=8)
        with pytest.raises(ConfigurationError):
            plan.add(MessageProbe(pair=(2, 3), nbytes=8), after=(ghost,))

    def test_plan_preserves_order(self):
        plan = MeasurementPlan()
        first = plan.add(MessageProbe(pair=(0, 1), nbytes=8))
        second = plan.add(MessageProbe(pair=(2, 3), nbytes=8), after=(first,))
        assert [step.probe for step in plan] == [first, second]
        assert list(plan)[1].after == (first,)

    def test_plan_seeded_with_steps_knows_their_probes(self):
        # The incremental known-probe set must cover steps passed to the
        # constructor, not just ones added through add().
        seeded = MessageProbe(pair=(0, 1), nbytes=8)
        plan = MeasurementPlan(steps=[PlanStep(probe=seeded)])
        plan.add(MessageProbe(pair=(2, 3), nbytes=8), after=(seeded,))
        assert len(plan) == 2

    def test_large_plan_add_is_linear(self):
        # 4000 adds with a dependency each: quadratic membership checks
        # would make this visibly slow; mostly this guards the invariant
        # that every added probe is immediately usable as a dependency.
        plan = MeasurementPlan()
        prev = plan.add(MessageProbe(pair=(0, 1), nbytes=1))
        for n in range(2, 4000):
            prev = plan.add(MessageProbe(pair=(0, 1), nbytes=n), after=(prev,))
        assert len(plan) == 3999


class TestMemoization:
    def test_repeated_probe_hits_cache(self):
        backend = CountingBackend()
        executor = PlanExecutor(backend)
        first = executor.message_latency(0, 1, 1024)
        second = executor.message_latency(0, 1, 1024)
        assert first == second
        assert len(backend.calls) == 1
        assert executor.stats.issued == 1
        assert executor.stats.cache_hits == 1

    def test_pair_order_normalized(self):
        backend = CountingBackend()
        executor = PlanExecutor(backend)
        executor.message_latency(3, 1, 64)
        executor.message_latency(1, 3, 64)
        assert len(backend.calls) == 1

    def test_samples_are_distinct_probes(self):
        backend = CountingBackend()
        executor = PlanExecutor(backend)
        executor.message_latency(0, 1, 64, sample=0)
        executor.message_latency(0, 1, 64, sample=1)
        assert len(backend.calls) == 2
        assert executor.stats.cache_hits == 0

    def test_traversal_reference_memoized(self):
        backend = CountingBackend()
        executor = PlanExecutor(backend)
        ref = executor.traversal_reference(0, 4096, 64, samples=3)
        again = executor.traversal_reference(0, 4096, 64, samples=3)
        assert ref == again
        assert executor.stats.issued == 3
        assert executor.stats.cache_hits == 3

    def test_execute_dedupes_within_plan(self):
        backend = CountingBackend()
        executor = PlanExecutor(backend)
        plan = MeasurementPlan()
        plan.add(StreamProbe(cores=(0,)))
        plan.add(StreamProbe(cores=(0, 1)))
        plan.add(StreamProbe(cores=(0,)))  # duplicate
        results = executor.execute(plan)
        assert len(backend.calls) == 2
        assert StreamProbe(cores=(0,)) in results

    def test_stats_roundtrip(self):
        stats = PlannerStats(issued=5, cache_hits=2, pruned=3)
        data = stats.as_dict()
        assert data["saved"] == 5
        other = PlannerStats()
        other.merge(data)
        other.merge(data)
        assert other.issued == 10 and other.pruned == 6
        # Non-counter keys (prune/jobs/saved from a report dict) are ignored.
        other.merge({"prune": "topology", "jobs": 4, "saved": 99})
        assert other.issued == 10


class TestTopologyClassifier:
    def test_validate_prune_mode(self):
        assert validate_prune_mode("topology") == "topology"
        with pytest.raises(ConfigurationError):
            validate_prune_mode("aggressive")

    def test_prune_requires_cluster_model(self):
        with pytest.raises(ConfigurationError):
            PlanExecutor(CountingBackend(), prune="topology")

    def test_classifier_for_simulated_backend(self):
        backend = SimulatedBackend(dunnington(), seed=0)
        assert classifier_for(backend) is not None
        assert classifier_for(CountingBackend()) is None

    def test_dunnington_pairs_fall_into_three_classes(self):
        # Exactly the paper's three communication layers: L2-sharing,
        # L3-sharing, and cross-socket pairs.
        classifier = TopologyClassifier(SimulatedBackend(dunnington()).cluster)
        classes = classifier.partition(all_pairs(list(range(24))))
        assert len(classes) == 3
        assert sorted(len(c.pairs) for c in classes) == [12, 48, 216]

    def test_partition_covers_all_pairs_once(self):
        cluster = SimulatedBackend(finis_terrae(2)).cluster
        pairs = all_pairs(list(range(32)))
        classes = TopologyClassifier(cluster).partition(pairs)
        seen = [p for cls in classes for p in cls.pairs]
        assert sorted(seen) == sorted(pairs)
        for cls in classes:
            assert cls.representative == cls.pairs[0]
            if len(cls.pairs) > 1:
                assert cls.spot_check == cls.pairs[-1]
            else:
                assert cls.spot_check is None

    def test_inter_node_pairs_share_one_class(self):
        cluster = SimulatedBackend(finis_terrae(2)).cluster
        classifier = TopologyClassifier(cluster)
        assert classifier.signature((0, 16)) == classifier.signature((5, 31))
        assert classifier.signature((0, 16)) != classifier.signature((0, 1))

    def test_ft2_class_count_is_tiny(self):
        cluster = SimulatedBackend(finis_terrae(2)).cluster
        classes = TopologyClassifier(cluster).partition(all_pairs(list(range(32))))
        # 496 pairs collapse to a handful of classes (the ≤20% budget
        # of the acceptance criterion with lots of headroom).
        assert len(classes) <= 8


class TestPrunedPairwise:
    def test_topology_matches_unpruned_without_noise(self):
        pairs = all_pairs(list(range(24)))
        plain = PlanExecutor(SimulatedBackend(dunnington(), seed=7, noise=0.0))
        pruned = PlanExecutor(
            SimulatedBackend(dunnington(), seed=7, noise=0.0), prune="topology"
        )
        expected = plain.pairwise_message_latency(pairs, 32 * 1024)
        got = pruned.pairwise_message_latency(pairs, 32 * 1024)
        assert got == expected
        assert pruned.stats.pairwise_measured == 3  # one per class
        assert pruned.stats.pruned == len(pairs) - 3
        assert plain.stats.pairwise_measured == len(pairs)

    def test_pruned_backend_charges_less_virtual_time(self):
        pairs = all_pairs(list(range(24)))
        plain_backend = SimulatedBackend(dunnington(), seed=7, noise=0.0)
        pruned_backend = SimulatedBackend(dunnington(), seed=7, noise=0.0)
        PlanExecutor(plain_backend).pairwise_message_latency(pairs, 1024)
        PlanExecutor(pruned_backend, prune="topology").pairwise_message_latency(
            pairs, 1024
        )
        assert pruned_backend.virtual_time < plain_backend.virtual_time / 3.0

    def test_broadcast_rekeys_dict_results(self):
        backend = SimulatedBackend(dunnington(), seed=3, noise=0.0)
        executor = PlanExecutor(backend, prune="topology")
        pairs = all_pairs(list(range(6)))
        result = executor.pairwise(
            pairs,
            probe_factory=lambda pair, s: StreamProbe(cores=pair, sample=s),
            value=lambda pair, raws: raws[0][pair[0]],
        )
        # Every requested pair got a value keyed by its own first core.
        assert set(result) == set(pairs)
        assert all(v > 0 for v in result.values())

    def test_verify_mode_spot_checks_each_class(self):
        backend = SimulatedBackend(dunnington(), seed=7, noise=0.0)
        executor = PlanExecutor(backend, prune="verify")
        pairs = all_pairs(list(range(24)))
        executor.pairwise_message_latency(pairs, 1024)
        assert executor.stats.spot_checks == 3  # one per class
        assert executor.stats.verify_fallbacks == 0

    def test_verify_mode_falls_back_on_divergence(self):
        # An adversarial classifier lumps a fast L3-sharing pair with a
        # slow cross-socket pair: the spot check must catch it and the
        # whole class must be measured for real.
        class LumpEverything:
            def partition(self, pairs):
                return [PairClass(signature=("lump",), pairs=tuple(pairs))]

        pairs = [(0, 1), (0, 2), (0, 3)]  # (0,3) crosses the socket
        truth = PlanExecutor(
            SimulatedBackend(dunnington(), seed=7, noise=0.0)
        ).pairwise_message_latency(pairs, 32 * 1024)
        assert truth[(0, 1)] != truth[(0, 3)]

        backend = SimulatedBackend(dunnington(), seed=7, noise=0.0)
        executor = PlanExecutor(
            backend, prune="verify", classifier=LumpEverything()
        )
        got = executor.pairwise_message_latency(pairs, 32 * 1024)
        assert executor.stats.verify_fallbacks == 1
        assert got == truth

    def test_topology_mode_with_bad_classifier_broadcasts_wrong(self):
        # Counterpart of the fallback test: without the spot check the
        # lumped class silently inherits the representative's latency —
        # this is exactly the failure 'verify' exists to catch.
        class LumpEverything:
            def partition(self, pairs):
                return [PairClass(signature=("lump",), pairs=tuple(pairs))]

        pairs = [(0, 1), (0, 3)]
        backend = SimulatedBackend(dunnington(), seed=7, noise=0.0)
        executor = PlanExecutor(
            backend, prune="topology", classifier=LumpEverything()
        )
        got = executor.pairwise_message_latency(pairs, 32 * 1024)
        assert got[(0, 1)] == got[(0, 3)]


class TestScheduling:
    def test_simulated_backend_never_threads(self):
        executor = PlanExecutor(SimulatedBackend(dunnington()), jobs=8)
        assert not executor._threaded

    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            PlanExecutor(CountingBackend(), jobs=0)

    def test_pool_runs_core_disjoint_probes(self):
        class WallClockBackend(CountingBackend):
            wall_clock_bound = True

        backend = WallClockBackend(n_cores=8)
        executor = PlanExecutor(backend, jobs=4)
        plan = MeasurementPlan()
        probes = [
            MessageProbe(pair=(2 * i, 2 * i + 1), nbytes=256) for i in range(4)
        ]
        for probe in probes:
            plan.add(probe)
        results = executor.execute(plan)
        assert len(results) == 4
        assert executor.stats.issued == 4
        serial = CountingBackend(n_cores=8)
        expected = {
            probe: serial.message_latency(*probe.pair, probe.nbytes)
            for probe in probes
        }
        assert results == expected

    def test_pool_respects_dependencies(self):
        class WallClockBackend(CountingBackend):
            wall_clock_bound = True

        backend = WallClockBackend(n_cores=4)
        executor = PlanExecutor(backend, jobs=4)
        plan = MeasurementPlan()
        first = plan.add(MessageProbe(pair=(0, 1), nbytes=64))
        plan.add(MessageProbe(pair=(2, 3), nbytes=64), after=(first,))
        executor.execute(plan)
        assert [c[0] for c in backend.calls] == ["latency", "latency"]
        assert backend.calls[0][1:3] == (0, 1)

    def test_same_core_probes_are_serialized(self):
        # All probes share core 0, so the pool can never overlap them;
        # the memo must still collect every result.
        class WallClockBackend(CountingBackend):
            wall_clock_bound = True

        backend = WallClockBackend(n_cores=8)
        executor = PlanExecutor(backend, jobs=4)
        plan = MeasurementPlan()
        for other in range(1, 6):
            plan.add(MessageProbe(pair=(0, other), nbytes=64))
        results = executor.execute(plan)
        assert len(results) == 5
        assert executor.stats.issued == 5
