"""Unit tests for machine fingerprinting and input diffing."""

import dataclasses

import pytest

from repro import SimulatedBackend, dempsey, dunnington
from repro.errors import ServiceError
from repro.netsim import default_comm_config
from repro.service.fingerprint import (
    DEFAULT_OPTIONS,
    MachineFingerprint,
    diff_inputs,
    fingerprint_of,
    flatten_inputs,
    machine_fingerprint,
    normalize_options,
)
from repro.topology import Cluster


def test_fingerprint_is_deterministic():
    a = machine_fingerprint(dunnington())
    b = machine_fingerprint(dunnington())
    assert a.digest == b.digest
    assert a.inputs == b.inputs
    assert len(a.digest) == 64
    assert a.short == a.digest[:12]


def test_machine_equals_single_node_cluster():
    machine = dempsey()
    cluster = Cluster(machine.name, machine, n_nodes=1)
    assert machine_fingerprint(machine).digest == machine_fingerprint(cluster).digest


def test_different_machines_differ():
    assert machine_fingerprint(dempsey()).digest != machine_fingerprint(dunnington()).digest


def test_options_participate_in_digest():
    base = machine_fingerprint(dempsey())
    pruned = machine_fingerprint(dempsey(), options={"prune": "cells"})
    assert base.digest != pruned.digest


def test_comm_model_participates_in_digest():
    machine = dempsey()
    base = machine_fingerprint(machine)
    with_comm = machine_fingerprint(machine, comm=default_comm_config(machine))
    assert base.digest != with_comm.digest


def test_normalize_options_defaults_and_types():
    opts = normalize_options()
    assert opts == DEFAULT_OPTIONS
    opts = normalize_options({"node_cores": ("0", "3")}, prune="cells")
    assert opts["node_cores"] == [0, 3]
    assert opts["prune"] == "cells"
    assert opts["probe_tlb"] is True


def test_normalize_options_rejects_unknown_keys():
    with pytest.raises(ServiceError, match="unknown suite option"):
        normalize_options({"probe_tlbs": False})


def test_fingerprint_of_backend_matches_model():
    machine = dempsey()
    backend = SimulatedBackend(machine, seed=1)
    via_backend = fingerprint_of(backend)
    via_model = machine_fingerprint(backend.cluster, comm=backend.comm_config)
    assert via_backend.digest == via_model.digest


def test_fingerprint_of_requires_topology_model():
    class Opaque:
        name = "opaque"

    with pytest.raises(ServiceError, match="no cluster"):
        fingerprint_of(Opaque())


def test_flatten_inputs_paths():
    flat = flatten_inputs({"a": {"b": 1}, "c": [10, {"d": "x"}], "e": []})
    assert flat == {"a.b": "1", "c[0]": "10", "c[1].d": '"x"', "e": "[]"}


def test_diff_inputs_changed_added_removed():
    stored = {"x": 1, "gone": 2, "same": 3}
    live = {"x": 9, "new": 4, "same": 3}
    assert diff_inputs(stored, live) == ["gone", "new", "x"]
    assert diff_inputs(stored, stored) == []


def test_diff_on_real_topology_change_is_precise():
    machine = dunnington()
    degraded = dataclasses.replace(
        machine,
        bandwidth_root=dataclasses.replace(
            machine.bandwidth_root, capacity=machine.bandwidth_root.capacity / 2
        ),
    )
    changed = diff_inputs(
        machine_fingerprint(machine).inputs, machine_fingerprint(degraded).inputs
    )
    assert changed == ["topology.node.bandwidth.capacity"]


def test_fingerprint_is_frozen():
    fp = machine_fingerprint(dempsey())
    assert isinstance(fp, MachineFingerprint)
    with pytest.raises(dataclasses.FrozenInstanceError):
        fp.digest = "tampered"
