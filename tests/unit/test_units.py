"""Unit tests for :mod:`repro.units`."""

import pytest

from repro.errors import ConfigurationError
from repro.units import (
    GiB,
    KiB,
    MiB,
    format_bandwidth,
    format_size,
    format_time,
    is_power_of_two,
    parse_size,
)


class TestParseSize:
    def test_plain_integer_passthrough(self):
        assert parse_size(512) == 512

    def test_bare_number_string(self):
        assert parse_size("512") == 512

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1KB", KiB),
            ("32KB", 32 * KiB),
            ("32kb", 32 * KiB),
            ("32KiB", 32 * KiB),
            ("3MB", 3 * MiB),
            ("1.5MB", 3 * MiB // 2),
            ("2G", 2 * GiB),
            ("64b", 64),
            (" 12 MB ", 12 * MiB),
        ],
    )
    def test_suffixes(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("text", ["", "abc", "12XB", "1..2MB", "-3MB"])
    def test_rejects_garbage(self, text):
        with pytest.raises(ConfigurationError):
            parse_size(text)

    def test_fractional_bytes_round_to_nearest(self):
        assert parse_size("1.0000001B") == 1
        assert parse_size("1.001KB") == 1025


class TestFormatSize:
    @pytest.mark.parametrize(
        "nbytes,expected",
        [
            (0, "0B"),
            (64, "64B"),
            (KiB, "1KB"),
            (32 * KiB, "32KB"),
            (3 * MiB, "3MB"),
            (3 * MiB // 2, "1.5MB"),
            (12 * MiB, "12MB"),
            (2 * GiB, "2GB"),
        ],
    )
    def test_values(self, nbytes, expected):
        assert format_size(nbytes) == expected

    def test_roundtrip_with_parse(self):
        for nbytes in (KiB, 16 * KiB, 9 * MiB, 12 * MiB, GiB):
            assert parse_size(format_size(nbytes)) == nbytes


class TestFormatTime:
    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (0.0, "0s"),
            (5e-9, "5ns"),
            (2.5e-6, "2.5us"),
            (1.5e-3, "1.5ms"),
            (2.0, "2s"),
            (300.0, "5min"),
        ],
    )
    def test_values(self, seconds, expected):
        assert format_time(seconds) == expected

    def test_negative(self):
        assert format_time(-2.5e-6) == "-2.5us"


def test_format_bandwidth():
    assert format_bandwidth(1 * GiB) == "1GB/s"


@pytest.mark.parametrize(
    "n,expected",
    [(1, True), (2, True), (64, True), (0, False), (-4, False), (12, False)],
)
def test_is_power_of_two(n, expected):
    assert is_power_of_two(n) is expected
