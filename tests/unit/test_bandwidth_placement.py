"""Unit tests for bandwidth-aware (memory-overhead-driven) placement."""

import pytest

from repro.autotune import Advisor, bandwidth_aware_placement
from repro.errors import ReproError

from .test_core_report import sample_report


class TestBandwidthAwarePlacement:
    def test_avoids_measured_overhead_pairs(self, ft_report):
        # Finis Terrae: cores 0-3 share a bus, 0-7 a cell; two ranks
        # should land on different cells.
        placement = bandwidth_aware_placement(ft_report, 2)
        a, b = placement
        assert ft_report.memory_level_of(a, b) is None

    def test_four_ranks_one_per_bus(self, ft_report):
        # The suite measures memory overheads on one node (the paper's
        # setup); restrict candidates to it.
        placement = bandwidth_aware_placement(
            ft_report, 4, candidate_cores=list(range(16))
        )
        buses = {core // 4 for core in placement}
        assert len(buses) == 4

    def test_respects_candidate_cores(self, ft_report):
        placement = bandwidth_aware_placement(
            ft_report, 2, candidate_cores=[0, 1, 2, 3]
        )
        assert set(placement) <= {0, 1, 2, 3}

    def test_too_many_ranks_rejected(self, ft_report):
        with pytest.raises(ReproError):
            bandwidth_aware_placement(ft_report, 99)

    def test_sample_report_first_pick_contention_free(self):
        report = sample_report()  # pairs (0,1) contend
        placement = bandwidth_aware_placement(report, 2)
        assert sorted(placement) != [0, 1]

    def test_deterministic(self, ft_report):
        a = bandwidth_aware_placement(ft_report, 6)
        b = bandwidth_aware_placement(ft_report, 6)
        assert a == b


class TestAdvisorNewMethods:
    def test_streaming_placement_delegates(self, ft_report):
        advisor = Advisor(ft_report)
        assert advisor.streaming_placement(2) == bandwidth_aware_placement(
            ft_report, 2
        )

    def test_choose_bcast_delegates(self, ft_report):
        advisor = Advisor(ft_report)
        choice = advisor.choose_bcast(list(range(32)), 16 * 1024)
        assert choice.algorithm in ("flat", "hierarchical")
        assert choice.groups