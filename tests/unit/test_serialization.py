"""Unit tests for machine/cluster JSON serialization."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.memsim import TLBSpec
from repro.netsim import default_comm_config
from repro.topology import (
    Cluster,
    athlon_3200,
    cluster_from_dict,
    cluster_to_dict,
    dempsey,
    dunnington,
    finis_terrae,
    finis_terrae_node,
    generic_smp,
    load_cluster,
    machine_from_dict,
    machine_to_dict,
    save_cluster,
)
from repro.topology.serialization import (
    comm_config_from_dict,
    comm_config_to_dict,
)


@pytest.mark.parametrize(
    "build", [dunnington, finis_terrae_node, dempsey, athlon_3200]
)
def test_machine_roundtrip(build):
    machine = build()
    assert machine_from_dict(machine_to_dict(machine)) == machine


def test_machine_with_tlb_roundtrip():
    machine = generic_smp(
        n_cores=2,
        levels=[("32KB", 8, 1, 3.0), ("2MB", 8, 1, 18.0)],
        tlb=TLBSpec(entries=128, ways=4, walk_cycles=35.0),
    )
    clone = machine_from_dict(machine_to_dict(machine))
    assert clone.tlb == machine.tlb


def test_cluster_roundtrip_with_comm(tmp_path):
    cluster = finis_terrae(3)
    comm = default_comm_config(cluster)
    path = tmp_path / "cluster.json"
    save_cluster(cluster, path, comm=comm)
    loaded, loaded_comm = load_cluster(path)
    assert loaded == cluster
    assert loaded_comm is not None
    assert loaded_comm.layers == comm.layers


def test_cluster_roundtrip_without_comm():
    cluster = Cluster("dn", dunnington())
    clone, comm = cluster_from_dict(cluster_to_dict(cluster))
    assert clone == cluster
    assert comm is None


def test_comm_config_roundtrip():
    comm = default_comm_config(finis_terrae(2))
    assert comm_config_from_dict(comm_config_to_dict(comm)).layers == comm.layers


def test_json_is_plain_data(tmp_path):
    path = tmp_path / "m.json"
    save_cluster(Cluster("dn", dunnington()), path)
    data = json.loads(path.read_text())
    assert data["node"]["n_cores"] == 24
    assert data["node"]["levels"][1]["groups"][0] == [0, 12]


def test_malformed_machine_raises():
    with pytest.raises(ConfigurationError):
        machine_from_dict({"name": "broken"})


def test_malformed_cluster_raises():
    with pytest.raises(ConfigurationError):
        cluster_from_dict({"name": "broken", "node": {}})


def test_loaded_machine_passes_validation_checks():
    # Corrupt a valid description and expect the Machine validators to
    # reject it (serialization must not bypass them).
    data = machine_to_dict(dunnington())
    data["levels"][0]["groups"][0] = [0, 1]  # overlaps group [1]
    with pytest.raises(ConfigurationError):
        machine_from_dict(data)


def test_cli_export_and_run_with_machine_file(tmp_path, capsys):
    from repro.cli import main

    desc = tmp_path / "machine.json"
    assert main(["export-machine", "dempsey", "-o", str(desc)]) == 0
    capsys.readouterr()
    report_path = tmp_path / "report.json"
    assert main(["run", "--machine-file", str(desc), "-o", str(report_path)]) == 0
    out = capsys.readouterr().out
    assert "dempsey" in out
    assert report_path.exists()

# -- machine zoo round-trips ----------------------------------------------


@pytest.mark.parametrize("family", sorted(__import__("repro.zoo", fromlist=["FAMILIES"]).FAMILIES))
def test_zoo_family_roundtrip(family, tmp_path):
    # Every zoo family (exclusive/victim organization, sectored lines,
    # heterogeneous core classes, multi-NIC comm layers) must survive
    # save -> load byte-identically at the dict level.
    from repro.zoo import generate_machine

    gm = generate_machine(family, 0)
    path = tmp_path / "zoo.json"
    save_cluster(gm.cluster, path, comm=gm.comm)
    loaded, loaded_comm = load_cluster(path)
    assert loaded == gm.cluster
    assert cluster_to_dict(loaded) == cluster_to_dict(gm.cluster)
    assert loaded_comm is not None
    assert loaded_comm.layers == gm.comm.layers


def test_classic_machine_dict_has_no_zoo_fields():
    # New fields serialize only when non-default, so fingerprints and
    # canonical digests of pre-zoo machines stay stable.
    data = machine_to_dict(dunnington())
    for level in data["levels"]:
        assert "organization" not in level
        assert "sector_lines" not in level
    assert "core_classes" not in data


def test_unknown_cache_organization_raises_topology_error():
    from repro.errors import TopologyError

    data = machine_to_dict(dunnington())
    data["levels"][0]["organization"] = "probabilistic"
    with pytest.raises(TopologyError, match="probabilistic"):
        machine_from_dict(data)
    # TopologyError is a ConfigurationError, so existing callers that
    # catch the base class keep working.
    assert issubclass(TopologyError, ConfigurationError)


def test_nic_count_roundtrip_and_default_elision():
    from repro.netsim import CommConfig, LayerParams

    comm = CommConfig(
        {
            "inter-node": LayerParams(
                name="inter-node",
                base_latency=8e-6,
                bandwidth=1.25e9,
                nic_count=4,
            ),
            "same-node": LayerParams(
                name="same-node", base_latency=1e-6, bandwidth=3e9
            ),
        }
    )
    data = comm_config_to_dict(comm)
    assert data["inter-node"]["nic_count"] == 4
    assert "nic_count" not in data["same-node"]
    assert comm_config_from_dict(data).layers == comm.layers
