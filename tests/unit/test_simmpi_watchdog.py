"""The simmpi watchdog: event budgets and actionable stuck-rank errors."""

import pytest

from repro.errors import SimulationError, WatchdogError
from repro.netsim.presets import default_comm_config
from repro.simmpi.comm import World
from repro.simmpi.events import Engine
from repro.topology import dempsey


def make_world(placement=(0, 1)):
    machine = dempsey()
    from repro.topology.machine import Cluster

    cluster = Cluster(machine.name, machine, n_nodes=1)
    return World(cluster, default_comm_config(cluster), placement=list(placement))


class TestEngineBudget:
    def test_run_returns_executed_count(self):
        engine = Engine()
        for _ in range(5):
            engine.schedule(0.0, lambda: None)
        assert engine.run() == 5

    def test_budget_exhaustion_raises(self):
        engine = Engine()

        def reschedule():
            engine.schedule(1.0, reschedule)  # never drains

        engine.schedule(0.0, reschedule)
        with pytest.raises(WatchdogError, match="event budget of 100"):
            engine.run(max_events=100)

    def test_budget_not_hit_for_finite_runs(self):
        engine = Engine()
        engine.schedule(0.0, lambda: None)
        assert engine.run(max_events=10) == 1


class TestWorldWatchdog:
    def test_runaway_model_names_stuck_ranks(self):
        world = make_world()

        def spinner(rank):
            while True:
                yield rank.compute(1e-9)

        def waiter(rank):
            yield rank.recv(0, tag=5)  # never satisfied

        world.add_process(spinner, 0)
        world.add_process(waiter, 1)
        with pytest.raises(WatchdogError) as err:
            world.run(max_events=1000)
        message = str(err.value)
        assert "rank 1 blocked on recv(source=0, tag=5)" in message
        assert "event budget" in message

    def test_default_budget_bounds_runaway_worlds(self):
        world = make_world()

        def spinner(rank):
            while True:
                yield rank.compute(1e-9)

        world.add_process(spinner, 0)
        world.add_process(spinner, 1)
        with pytest.raises(WatchdogError):
            world.run()

    def test_deadlock_diagnostics_name_ranks_and_time(self):
        world = make_world()

        def a(rank):
            yield rank.recv(1, tag=1)

        def b(rank):
            yield rank.recv(0, tag=2)

        world.add_process(a, 0)
        world.add_process(b, 1)
        with pytest.raises(SimulationError, match="deadlock") as err:
            world.run()
        message = str(err.value)
        assert "rank 0 blocked on recv(source=1, tag=1)" in message
        assert "rank 1 blocked on recv(source=0, tag=2)" in message

    def test_watchdog_error_is_a_simulation_error(self):
        assert issubclass(WatchdogError, SimulationError)

    def test_healthy_world_unaffected(self):
        world = make_world()

        def sender(rank):
            yield rank.send(1, 1024)

        def receiver(rank):
            yield rank.recv(0)

        world.add_process(sender, 0)
        world.add_process(receiver, 1)
        result = world.run()
        assert result.messages == 1
