"""Seeded-random property tests over the detection invariants.

Where :mod:`tests.property` uses hypothesis to search for adversarial
machine geometries, this suite pins the invariants that must hold on
*every* machine the builders can produce, across a fixed spread of
seeds (so a regression names the exact seed that broke):

- detected cache sizes are strictly monotone in the level index;
- the shared-cache relation is symmetric and transitive within a
  sharing group;
- a ``prune="topology"`` planner never issues more probes than
  ``prune="off"`` for the same batch;
- machine fingerprints are invariant under dict-key reordering.

Machines are drawn with :func:`repro.rng.ensure_rng` generators only —
no hypothesis, no new dependencies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import SimulatedBackend
from repro.core.cache_size import detect_caches
from repro.core.shared_cache import detect_shared_caches
from repro.planner import PlanExecutor
from repro.rng import ensure_rng
from repro.service import machine_fingerprint
from repro.topology import generic_smp
from repro.topology.machine import all_pairs
from repro.units import KiB, MiB

SEEDS = list(range(24))  # >= 20 seeds, per the acceptance bar


def random_two_level_machine(rng: np.random.Generator, n_cores: int = 2):
    """A random-but-valid two-level SMP (valid geometry, separated sizes,
    power-of-two set counts), mirroring the hypothesis strategy in
    tests/property/test_prop_detection.py but driven by a seeded rng."""
    l1_size = int(rng.choice([8 * KiB, 16 * KiB, 32 * KiB, 64 * KiB]))
    l1_ways = int(rng.choice([2, 4, 8]))
    l2_choices = []
    for size in (256 * KiB, 512 * KiB, 1 * MiB, 2 * MiB, 3 * MiB, 4 * MiB):
        if size < 8 * l1_size:
            continue
        for ways in (4, 8, 12, 16):
            sets = size // (ways * 64)
            if sets * ways * 64 != size or sets & (sets - 1):
                continue
            if size % (ways * 4 * KiB) != 0:
                continue
            l2_choices.append((size, ways))
    l2_size, l2_ways = sorted(l2_choices)[int(rng.integers(len(l2_choices)))]
    shared_by = int(rng.choice([s for s in (1, 2, n_cores) if n_cores % s == 0]))
    return generic_smp(
        name="prop-smp",
        n_cores=n_cores,
        levels=[
            (l1_size, l1_ways, 1, 3.0),
            (l2_size, l2_ways, shared_by, 18.0),
        ],
        mem_latency=280.0,
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_cache_sizes_monotone_per_level(seed):
    """Detected sizes must grow strictly with the level index."""
    rng = ensure_rng(seed)
    machine = random_two_level_machine(rng)
    backend = SimulatedBackend(machine, seed=seed)
    result = detect_caches(backend)
    sizes = result.sizes
    assert sizes, seed
    assert all(a < b for a, b in zip(sizes, sizes[1:])), (seed, sizes)


@pytest.mark.parametrize("seed", SEEDS)
def test_shared_cache_relation_symmetric_and_transitive(seed):
    """Within every level the 'shares a cache with' relation must be an
    equivalence on the cores it touches: symmetric (groups agree from
    both endpoints) and transitive (a~b and b~c imply a~c)."""
    rng = ensure_rng(1000 + seed)
    n_cores = int(rng.choice([4, 6, 8]))
    machine = random_two_level_machine(rng, n_cores=n_cores)
    backend = SimulatedBackend(machine, seed=seed, noise=0.0)
    truth = [level.spec.size for level in machine.levels]
    result = detect_shared_caches(backend, truth)
    for level in range(1, len(truth) + 1):
        pairs = {tuple(sorted(p)) for p in result.shared_pairs[level - 1]}
        related = {c for pair in pairs for c in pair}
        for a in related:
            for b in related:
                if a == b:
                    continue
                ab = tuple(sorted((a, b))) in pairs
                # symmetry: membership seen identically from both ends
                assert (b in result.sharing_group(a, level)) == ab, (seed, level, a, b)
                assert (a in result.sharing_group(b, level)) == ab, (seed, level, a, b)
                # transitivity: a~b and b~c imply a~c
                for c in related:
                    if c in (a, b):
                        continue
                    if ab and tuple(sorted((b, c))) in pairs:
                        assert tuple(sorted((a, c))) in pairs, (seed, level, a, b, c)


@pytest.mark.parametrize("seed", SEEDS)
def test_topology_pruning_never_issues_more_probes(seed):
    """For the same pairwise batch, ``prune='topology'`` must issue at
    most as many measurements as ``prune='off'``."""
    rng = ensure_rng(2000 + seed)
    n_cores = int(rng.choice([4, 6, 8]))
    machine = random_two_level_machine(rng, n_cores=n_cores)
    probe_size = machine.levels[0].spec.size
    pairs = all_pairs(list(range(n_cores)))

    issued = {}
    for prune in ("off", "topology"):
        backend = SimulatedBackend(machine, seed=seed, noise=0.0)
        executor = PlanExecutor(backend, prune=prune)
        executor.pairwise_message_latency(pairs, probe_size)
        issued[prune] = executor.stats.issued
    assert issued["topology"] <= issued["off"], (seed, issued)


@pytest.mark.parametrize("seed", SEEDS)
def test_fingerprint_stable_under_key_reordering(seed):
    """The digest must not depend on dict insertion order anywhere in
    the fingerprint inputs."""
    rng = ensure_rng(3000 + seed)
    machine = random_two_level_machine(rng, n_cores=4)
    options = {
        "node_cores": [0, 1, 2],
        "comm_cores": None,
        "probe_tlb": bool(rng.integers(2)),
        "prune": str(rng.choice(["off", "topology", "verify"])),
    }
    keys = list(options)
    order = rng.permutation(len(keys))
    shuffled = {keys[i]: options[keys[i]] for i in order}
    assert list(shuffled) != keys or (order == np.arange(len(keys))).all()

    fp_a = machine_fingerprint(machine, options=options)
    fp_b = machine_fingerprint(machine, options=shuffled)
    assert fp_a.digest == fp_b.digest, seed
    assert fp_a.inputs == fp_b.inputs, seed
