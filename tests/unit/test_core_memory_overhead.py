"""Unit tests for memory-overhead characterization (Fig. 6)."""

import pytest

from repro.backends import SimulatedBackend
from repro.core.memory_overhead import (
    characterize_memory_overhead,
    memory_scalability,
)
from repro.errors import MeasurementError
from repro.topology import dunnington, finis_terrae_node


@pytest.fixture(scope="module")
def ft_result():
    backend = SimulatedBackend(finis_terrae_node(), seed=42)
    return characterize_memory_overhead(backend)


class TestFinisTerrae:
    def test_two_overhead_levels(self, ft_result):
        assert ft_result.n_levels == 2

    def test_levels_sorted_worst_first(self, ft_result):
        assert ft_result.levels[0].bandwidth < ft_result.levels[1].bandwidth

    def test_bus_groups(self, ft_result):
        assert ft_result.levels[0].groups == [
            [0, 1, 2, 3],
            [4, 5, 6, 7],
            [8, 9, 10, 11],
            [12, 13, 14, 15],
        ]

    def test_cell_groups(self, ft_result):
        assert ft_result.levels[1].groups == [
            [0, 1, 2, 3, 4, 5, 6, 7],
            [8, 9, 10, 11, 12, 13, 14, 15],
        ]

    def test_cell_level_pairs_do_not_duplicate_bus_pairs(self, ft_result):
        bus_pairs = set(ft_result.levels[0].pairs)
        cell_pairs = set(ft_result.levels[1].pairs)
        assert not bus_pairs & cell_pairs

    def test_cross_cell_pairs_have_no_overhead(self, ft_result):
        assert ft_result.overhead_level_of((0, 8)) is None
        assert ft_result.overhead_level_of((0, 1)) == 0
        assert ft_result.overhead_level_of((0, 4)) == 1

    def test_cell_bandwidth_is_25pct_below_reference(self, ft_result):
        loss = 1 - ft_result.levels[1].bandwidth / ft_result.reference
        assert loss == pytest.approx(0.25, abs=0.05)

    def test_scalability_recorded_per_level(self, ft_result):
        assert len(ft_result.scalability) == 2
        bus_curve = ft_result.scalability[0]
        assert len(bus_curve) == 4  # group of 4 cores
        assert bus_curve[0] > bus_curve[-1]  # adding cores costs bandwidth


class TestDunnington:
    def test_single_uniform_level(self):
        backend = SimulatedBackend(dunnington(), seed=7)
        result = characterize_memory_overhead(backend)
        assert result.n_levels == 1
        assert len(result.levels[0].pairs) == 24 * 23 // 2
        assert result.levels[0].groups == [list(range(24))]


class TestScalability:
    def test_curve_monotone(self):
        backend = SimulatedBackend(finis_terrae_node(), seed=3)
        curve = memory_scalability(backend, [0, 1, 2, 3])
        # Noise allows tiny wiggles; the trend must be decreasing.
        assert curve[0] > curve[-1] * 1.5

    def test_rejects_empty_group(self):
        backend = SimulatedBackend(finis_terrae_node(), seed=3)
        with pytest.raises(MeasurementError):
            memory_scalability(backend, [])


def test_reference_core_must_be_included():
    backend = SimulatedBackend(finis_terrae_node(), seed=3)
    with pytest.raises(MeasurementError):
        characterize_memory_overhead(backend, cores=[1, 2], reference_core=0)
