"""Unit tests for the ASCII renderers and RNG helpers."""

import numpy as np
import pytest

from repro.rng import DEFAULT_SEED, ensure_rng, spawn
from repro.viz import ascii_chart, ascii_table


class TestAsciiTable:
    def test_alignment_and_header(self):
        text = ascii_table(["name", "value"], [("a", 1), ("long-name", 22)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert "long-name" in lines[3]

    def test_title(self):
        text = ascii_table(["x"], [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_extra_columns_tolerated(self):
        text = ascii_table(["a"], [("x", "surprise")])
        assert "surprise" in text


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        xs = [1, 2, 4, 8]
        text = ascii_chart(xs, {"cycles": [1, 2, 3, 4]}, width=20, height=5)
        assert "*" in text
        assert "*=cycles" in text

    def test_log_axes(self):
        xs = [1024, 2048, 1 << 20]
        text = ascii_chart(
            xs, {"a": [1.0, 10.0, 100.0]}, logx=True, logy=True, width=20, height=5
        )
        assert "(no data)" not in text

    def test_handles_empty(self):
        assert ascii_chart([], {"a": []}) == "(no data)"

    def test_two_series_distinct_markers(self):
        xs = [1, 2, 3]
        text = ascii_chart(xs, {"a": [1, 2, 3], "b": [3, 2, 1]}, width=10, height=4)
        assert "*=a" in text and "o=b" in text

    def test_none_values_skipped(self):
        text = ascii_chart([1, 2], {"a": [None, 2.0]}, width=10, height=4)
        assert "(no data)" not in text


class TestRng:
    def test_none_uses_default_seed(self):
        a = ensure_rng(None)
        b = np.random.default_rng(DEFAULT_SEED)
        assert a.integers(0, 1 << 30) == b.integers(0, 1 << 30)

    def test_int_seed(self):
        assert ensure_rng(7).integers(0, 100) == ensure_rng(7).integers(0, 100)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_spawn_independent_streams(self):
        children = spawn(ensure_rng(3), 4)
        draws = [c.integers(0, 1 << 30) for c in children]
        assert len(set(draws)) == 4

    def test_spawn_deterministic(self):
        a = [g.integers(0, 1 << 30) for g in spawn(ensure_rng(3), 3)]
        b = [g.integers(0, 1 << 30) for g in spawn(ensure_rng(3), 3)]
        assert a == b
