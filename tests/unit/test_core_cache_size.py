"""Unit tests for the Fig. 4 cache-level detection pipeline."""

import numpy as np
import pytest

from repro.backends import SimulatedBackend
from repro.core.cache_size import (
    _gradient_regions,
    _split_at_valleys,
    detect_cache_levels,
    detect_caches,
)
from repro.core.mcalibrator import McalibratorResult
from repro.errors import DetectionError
from repro.memsim.paging import ColoredPaging, ContiguousPaging
from repro.topology import dempsey, generic_smp
from repro.units import KiB, MiB


def mres_from(cycles, start=1024):
    cycles = np.asarray(cycles, dtype=np.float64)
    sizes = start * 2 ** np.arange(len(cycles))
    return McalibratorResult(sizes=sizes, cycles=cycles, stride=1024, core=0)


class TestGradientRegions:
    def test_single_cliff(self):
        g = np.array([1.0, 1.0, 5.0, 1.0, 1.0])
        assert _gradient_regions(g) == [(2, 2)]

    def test_wide_region(self):
        g = np.array([1.0, 1.2, 1.4, 1.2, 1.0])
        assert _gradient_regions(g) == [(1, 3)]

    def test_region_touching_the_end(self):
        g = np.array([1.0, 1.0, 1.3, 1.5])
        assert _gradient_regions(g) == [(2, 3)]

    def test_no_regions_on_flat_curve(self):
        assert _gradient_regions(np.ones(6)) == []


class TestSplitAtValleys:
    def test_two_separated_peaks_split(self):
        g = np.array([1.0, 1.6, 1.06, 1.06, 1.7, 1.0])
        pieces = _split_at_valleys(g, 1, 4)
        assert len(pieces) == 2
        assert pieces[0][0] == 1 and pieces[1][1] == 4

    def test_single_peak_untouched(self):
        g = np.array([1.0, 1.2, 1.8, 1.3, 1.0])
        assert _split_at_valleys(g, 1, 3) == [(1, 3)]

    def test_shallow_valley_not_split(self):
        g = np.array([1.0, 1.6, 1.55, 1.65, 1.0])
        assert _split_at_valleys(g, 1, 3) == [(1, 3)]


class TestDetectCacheLevels:
    def test_synthetic_l1_only(self):
        # 3 cycles until 8KB, 20 after: L1 = 8KB positionally.
        cycles = [3, 3, 3, 3, 20, 20, 20]
        res = detect_cache_levels(mres_from(cycles), page_size=4 * KiB)
        assert len(res.levels) == 1
        assert res.levels[0].size == 1024 * 2**3
        assert res.levels[0].method == "l1-peak"

    def test_flat_curve_raises(self):
        with pytest.raises(DetectionError):
            detect_cache_levels(mres_from([3.0] * 8), page_size=4 * KiB)

    def test_noise_spike_is_ignored(self):
        cycles = [3, 3, 3, 20, 20, 20.9, 20, 20]  # one small bump
        res = detect_cache_levels(mres_from(cycles), page_size=4 * KiB)
        assert len(res.levels) == 1


class TestDetectCaches:
    def test_page_coloring_yields_positional_estimates(self):
        machine = generic_smp(
            n_cores=1,
            levels=[("32KB", 8, 1, 3.0), ("2MB", 8, 1, 20.0)],
            mem_latency=250.0,
        )
        colors = (2 * MiB) // (8 * 4 * KiB)  # page sets of the L2
        backend = SimulatedBackend(
            machine, paging=ColoredPaging(n_colors=colors), seed=1
        )
        res = detect_caches(backend)
        assert res.sizes == [32 * KiB, 2 * MiB]
        assert res.levels[1].method == "positional"

    def test_contiguous_paging_also_positional(self):
        machine = generic_smp(
            n_cores=1,
            levels=[("32KB", 8, 1, 3.0), ("2MB", 8, 1, 20.0)],
        )
        backend = SimulatedBackend(machine, paging=ContiguousPaging(), seed=1)
        res = detect_caches(backend)
        assert res.sizes == [32 * KiB, 2 * MiB]
        assert res.levels[1].method == "positional"

    def test_random_paging_uses_probabilistic(self):
        backend = SimulatedBackend(dempsey(), seed=1)
        res = detect_caches(backend)
        assert res.sizes == [16 * KiB, 2 * MiB]
        assert res.levels[1].method.startswith("probabilistic")

    def test_refinement_disabled_still_reasonable(self):
        backend = SimulatedBackend(dempsey(), seed=1)
        res = detect_caches(backend, refine=False)
        # Without densification the estimate may wobble a step, but the
        # level structure must hold.
        assert len(res.levels) == 2
        assert res.levels[0].size == 16 * KiB
        assert abs(res.levels[1].size - 2 * MiB) <= 512 * KiB

    def test_small_max_cache_misses_l2_gracefully(self):
        backend = SimulatedBackend(dempsey(), seed=1)
        res = detect_caches(backend, max_cache=256 * KiB)
        assert [l.size for l in res.levels] == [16 * KiB]
