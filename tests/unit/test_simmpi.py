"""Unit tests for the discrete-event MPI runtime."""

import pytest

from repro.errors import SimulationError
from repro.netsim import default_comm_config
from repro.simmpi import (
    ANY_SOURCE,
    Engine,
    World,
    concurrent_exchanges,
    concurrent_transfers,
    pingpong_latency,
)
from repro.topology import Cluster, dunnington, finis_terrae
from repro.units import KiB


class TestEngine:
    def test_ordering(self):
        engine = Engine()
        seen = []
        engine.schedule(2.0, lambda: seen.append("late"))
        engine.schedule(1.0, lambda: seen.append("early"))
        engine.run()
        assert seen == ["early", "late"]
        assert engine.now == 2.0

    def test_fifo_among_equal_timestamps(self):
        engine = Engine()
        seen = []
        engine.schedule(1.0, lambda: seen.append("a"))
        engine.schedule(1.0, lambda: seen.append("b"))
        engine.run()
        assert seen == ["a", "b"]

    def test_rejects_negative_delay(self):
        with pytest.raises(SimulationError):
            Engine().schedule(-1.0, lambda: None)

    def test_max_time_stops_early(self):
        engine = Engine()
        seen = []
        engine.schedule(1.0, lambda: seen.append(1))
        engine.schedule(5.0, lambda: seen.append(5))
        engine.run(max_time=2.0)
        assert seen == [1]
        assert engine.pending == 1


def _world(system=None, n=2):
    cluster = system if system is not None else Cluster("dunnington", dunnington())
    config = default_comm_config(cluster)
    return World(cluster, config, placement=list(range(n)))


class TestWorldBasics:
    def test_send_recv_roundtrip(self):
        world = _world()
        log = []

        def sender(rank):
            yield rank.send(1, 4096)
            log.append(("sent", rank.now))

        def receiver(rank):
            src, nbytes = yield rank.recv(0)
            log.append(("recv", src, nbytes, rank.now))

        world.add_process(sender, 0)
        world.add_process(receiver, 1)
        result = world.run()
        assert result.messages == 1 and result.bytes_sent == 4096
        assert ("recv", 0, 4096, result.makespan) in log

    def test_any_source_matches(self):
        world = _world()

        def sender(rank):
            yield rank.send(1, 64)

        def receiver(rank):
            src, _ = yield rank.recv(ANY_SOURCE)
            assert src == 0

        world.add_process(sender, 0)
        world.add_process(receiver, 1)
        world.run()

    def test_tag_matching_is_selective(self):
        world = _world()
        order = []

        def sender(rank):
            yield rank.send(1, 64, tag=7)
            yield rank.send(1, 128, tag=9)

        def receiver(rank):
            src, n = yield rank.recv(0, tag=9)
            order.append(n)
            src, n = yield rank.recv(0, tag=7)
            order.append(n)

        world.add_process(sender, 0)
        world.add_process(receiver, 1)
        world.run()
        assert order == [128, 64]

    def test_deadlock_detected(self):
        world = _world()

        def both(rank):
            yield rank.recv((rank.id + 1) % 2)

        world.spawn_all(both)
        with pytest.raises(SimulationError, match="deadlock"):
            world.run()

    def test_eager_sender_does_not_block(self):
        world = _world()
        sent_at = {}

        def sender(rank):
            yield rank.send(1, 1024)  # eager: below threshold
            sent_at["t"] = rank.now

        def receiver(rank):
            yield rank.compute(1.0)  # post the recv very late
            yield rank.recv(0)

        world.add_process(sender, 0)
        world.add_process(receiver, 1)
        result = world.run()
        assert sent_at["t"] < 1e-3  # returned immediately
        assert result.makespan >= 1.0

    def test_rendezvous_sender_blocks(self):
        world = _world()
        sent_at = {}

        def sender(rank):
            yield rank.send(1, 10 * 1024 * 1024)  # far above threshold
            sent_at["t"] = rank.now

        def receiver(rank):
            yield rank.compute(1.0)
            yield rank.recv(0)

        world.add_process(sender, 0)
        world.add_process(receiver, 1)
        world.run()
        assert sent_at["t"] >= 1.0

    def test_compute_advances_clock(self):
        world = _world(n=1)

        def worker(rank):
            yield rank.compute(2.5)

        world.add_process(worker, 0)
        assert world.run().makespan == pytest.approx(2.5)

    def test_send_to_self_rejected(self):
        world = _world()

        def bad(rank):
            yield rank.send(rank.id, 64)

        def idle(rank):
            yield rank.compute(0.0)

        world.add_process(bad, 0)
        world.add_process(idle, 1)
        with pytest.raises(SimulationError):
            world.run()


class TestCollectives:
    @pytest.mark.parametrize("n", [2, 3, 4, 7, 8])
    def test_barrier_completes(self, n):
        cluster = Cluster("dunnington", dunnington())
        world = World(cluster, default_comm_config(cluster), list(range(n)))

        def prog(rank):
            yield from rank.barrier()

        world.spawn_all(prog)
        result = world.run()
        assert result.makespan > 0

    @pytest.mark.parametrize("n,root", [(2, 0), (5, 2), (8, 7)])
    def test_bcast_reaches_everyone(self, n, root):
        cluster = Cluster("dunnington", dunnington())
        world = World(cluster, default_comm_config(cluster), list(range(n)))

        def prog(rank):
            yield from rank.bcast(root, 4096)

        world.spawn_all(prog)
        result = world.run()
        assert result.messages == n - 1

    def test_gather_message_count(self):
        cluster = Cluster("dunnington", dunnington())
        world = World(cluster, default_comm_config(cluster), list(range(6)))

        def prog(rank):
            yield from rank.gather(0, 1024)

        world.spawn_all(prog)
        assert world.run().messages == 5

    def test_allgather_message_count(self):
        cluster = Cluster("dunnington", dunnington())
        n = 6
        world = World(cluster, default_comm_config(cluster), list(range(n)))

        def prog(rank):
            yield from rank.allgather(1024)

        world.spawn_all(prog)
        assert world.run().messages == n * (n - 1)


class TestPrimitives:
    def test_pingpong_matches_model(self):
        dn = Cluster("dunnington", dunnington())
        config = default_comm_config(dn)
        measured = pingpong_latency(dn, config, 0, 12, 32 * KiB)
        expected = config.layers["shared-l2"].latency(32 * KiB)
        assert measured == pytest.approx(expected, rel=1e-9)

    def test_concurrent_worse_than_isolated(self):
        ft = finis_terrae(2)
        config = default_comm_config(ft)
        pairs = [(i, 16 + i) for i in range(8)]
        conc = concurrent_exchanges(ft, config, pairs, 16 * KiB)
        solo = pingpong_latency(ft, config, 0, 16, 16 * KiB)
        assert conc.worst > solo
        assert conc.mean <= conc.worst

    def test_paper_7x_slowdown_at_32_messages(self):
        ft = finis_terrae(2)
        config = default_comm_config(ft)
        pairs = [(i, 16 + i) for i in range(16)]  # 32 messages
        conc = concurrent_exchanges(ft, config, pairs, 16 * KiB)
        solo = pingpong_latency(ft, config, 0, 16, 16 * KiB)
        assert 6.0 < conc.worst / solo < 8.0

    def test_concurrent_transfers_unidirectional(self):
        ft = finis_terrae(2)
        config = default_comm_config(ft)
        result = concurrent_transfers(ft, config, [(0, 16), (1, 17)], 16 * KiB)
        assert set(result.per_pair) == {(0, 16), (1, 17)}

    def test_pairs_sharing_cores_rejected(self):
        ft = finis_terrae(2)
        config = default_comm_config(ft)
        from repro.errors import MeasurementError

        with pytest.raises(MeasurementError):
            concurrent_exchanges(ft, config, [(0, 16), (0, 17)], 1024)
