"""Unit tests for the blocked-matmul cost model and conflict-aware tiling."""

import pytest

from repro.autotune.tiling import conflict_aware_tile, matmul_tile_side
from repro.errors import ConfigurationError, ReproError
from repro.memsim.matmul import best_tile, blocked_matmul_cost, tile_sweep
from repro.topology import dempsey, generic_smp
from repro.units import KiB, MiB

from .test_core_report import sample_report


class TestBlockedMatmulCost:
    def test_cost_curve_is_u_shaped(self):
        machine = dempsey()
        sweep = tile_sweep(machine, 2048, [16, 64, 128, 256, 512])
        costs = [e.lines_fetched for e in sweep]
        best = min(range(len(costs)), key=costs.__getitem__)
        assert 0 < best < len(costs) - 1  # interior optimum

    def test_fitting_working_set_has_low_miss_rate(self):
        machine = dempsey()  # 2MB L2
        est = blocked_matmul_cost(machine, 2048, 64)  # 96KB working set
        assert est.working_set_miss_rate < 0.01

    def test_overflowing_working_set_thrashes(self):
        machine = dempsey()
        est = blocked_matmul_cost(machine, 2048, 512)  # 6MB >> 2MB
        assert est.working_set_miss_rate == 1.0

    def test_virtually_indexed_target_has_no_conflicts_below_capacity(self):
        machine = generic_smp(
            n_cores=1, levels=[("256KB", 8, 1, 3.0)], mem_latency=200.0
        )
        est = blocked_matmul_cost(machine, 1024, 64, level=1)
        assert est.working_set_miss_rate == 0.0

    def test_tile_clamped_to_matrix(self):
        machine = dempsey()
        small = blocked_matmul_cost(machine, 64, 512)
        assert small.tile == 64

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            blocked_matmul_cost(dempsey(), 0, 64)
        with pytest.raises(ConfigurationError):
            blocked_matmul_cost(dempsey(), 64, 0)

    def test_best_tile_returns_sweep_minimum(self):
        machine = dempsey()
        tiles = [32, 64, 128, 256]
        winner = best_tile(machine, 2048, tiles)
        sweep = tile_sweep(machine, 2048, tiles)
        assert winner == min(sweep, key=lambda e: e.lines_fetched).tile


class TestConflictAwareTile:
    def test_uses_measured_ways(self, dunnington_report):
        side = conflict_aware_tile(dunnington_report, 2)
        l2 = next(c for c in dunnington_report.caches if c.level == 2)
        # The working set must stay comfortably below the capacity.
        assert 3 * side * side * 8 < 0.7 * l2.size
        assert side >= 64  # and not be absurdly conservative

    def test_requires_measured_associativity(self):
        report = sample_report()  # carries no ways
        with pytest.raises(ReproError):
            conflict_aware_tile(report, 2)

    def test_default_matmul_tile_falls_back_without_ways(self):
        report = sample_report()
        side = matmul_tile_side(report, 2)  # falls back to fill 0.5
        expected = matmul_tile_side(report, 2, fill_fraction=0.5)
        assert side == expected

    def test_explicit_fraction_overrides(self, dunnington_report):
        conservative = matmul_tile_side(dunnington_report, 2, fill_fraction=0.1)
        aware = matmul_tile_side(dunnington_report, 2)
        assert conservative < aware

    def test_report_ways_populated_by_suite(self, dunnington_report):
        by_level = {c.level: c.ways for c in dunnington_report.caches}
        assert by_level[1] is None  # l1-peak carries no associativity
        assert by_level[2] is not None
        assert by_level[3] is not None
