"""Unit tests for :mod:`repro.topology.cache`."""

import pytest

from repro.errors import ConfigurationError
from repro.topology.cache import (
    CacheLevel,
    CacheSpec,
    Indexing,
    grouped,
    private_groups,
)
from repro.units import KiB, MiB


def l1(size=32 * KiB, ways=8, **kw):
    return CacheSpec(1, size, ways=ways, indexing=Indexing.VIRTUAL, **kw)


class TestCacheSpec:
    def test_basic_derived_quantities(self):
        spec = CacheSpec(2, 3 * MiB, ways=12)
        assert spec.num_sets == 4096
        assert spec.num_lines == 3 * MiB // 64
        assert spec.page_colors(4 * KiB) == 64

    def test_page_colors_small_cache_clamps_to_one(self):
        spec = CacheSpec(1, 16 * KiB, ways=8, line_size=64)
        assert spec.page_colors(4 * KiB) == 1  # 16K/(8*4K) < 1

    def test_page_colors_rejects_bad_page_size(self):
        with pytest.raises(ConfigurationError):
            l1().page_colors(100)  # not a multiple of the line size

    def test_rejects_size_not_divisible(self):
        with pytest.raises(ConfigurationError):
            CacheSpec(1, 10000, ways=8)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigurationError):
            CacheSpec(3, 12 * MiB, ways=16)  # 12288 sets

    def test_rejects_level_zero(self):
        with pytest.raises(ConfigurationError):
            CacheSpec(0, 32 * KiB, ways=8)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            CacheSpec(1, 32 * KiB, ways=8, latency=-1.0)

    def test_describe_mentions_key_facts(self):
        text = CacheSpec(2, 3 * MiB, ways=12).describe()
        assert "L2" in text and "3MB" in text and "12-way" in text


class TestCacheLevel:
    def test_private_groups_cover_each_core_alone(self):
        level = CacheLevel(l1(), private_groups(4))
        assert level.cores == frozenset(range(4))
        for c in range(4):
            assert level.group_of(c) == frozenset((c,))
        assert not level.shared_by(0, 1)

    def test_shared_groups(self):
        level = CacheLevel(CacheSpec(2, 3 * MiB, ways=12), grouped([[0, 2], [1, 3]]))
        assert level.shared_by(0, 2)
        assert not level.shared_by(0, 1)
        assert level.instance_index(3) == 1

    def test_rejects_overlapping_groups(self):
        with pytest.raises(ConfigurationError):
            CacheLevel(l1(), grouped([[0, 1], [1, 2]]))

    def test_rejects_empty_group(self):
        with pytest.raises(ConfigurationError):
            CacheLevel(l1(), (frozenset(),))

    def test_group_of_unknown_core_raises(self):
        level = CacheLevel(l1(), private_groups(2))
        with pytest.raises(ConfigurationError):
            level.group_of(5)
