"""Unit tests for the tuning service: cache, answers, metrics, harness."""

import threading

import pytest

from repro.autotune import Advisor
from repro.errors import ReproError, ServiceError
from repro.service.server import (
    AggregationQuery,
    CommLatencyQuery,
    CoScheduleQuery,
    LRUTTLCache,
    MatmulTileQuery,
    SingleFlightTable,
    StreamingCoresQuery,
    TileQuery,
    TuningService,
    answer,
    default_query_pool,
    query_from_spec,
    run_harness,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


# -- LRU+TTL cache -------------------------------------------------------


def test_cache_hit_miss():
    cache = LRUTTLCache(capacity=4)
    hit, _ = cache.get("k")
    assert not hit
    cache.put("k", 42)
    hit, value = cache.get("k")
    assert hit and value == 42


def test_cache_evicts_least_recently_used():
    cache = LRUTTLCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")  # refresh "a"; "b" becomes the LRU victim
    cache.put("c", 3)
    assert cache.get("a")[0]
    assert not cache.get("b")[0]
    assert cache.get("c")[0]
    assert cache.evictions == 1
    assert len(cache) == 2


def test_cache_ttl_expiry_with_fake_clock():
    clock = FakeClock()
    cache = LRUTTLCache(capacity=4, ttl=10.0, clock=clock)
    cache.put("k", 1)
    clock.now = 9.0
    assert cache.get("k")[0]
    clock.now = 20.1
    hit, _ = cache.get("k")
    assert not hit
    assert cache.expirations == 1
    assert len(cache) == 0


def test_cache_rejects_bad_shape():
    with pytest.raises(ServiceError):
        LRUTTLCache(capacity=0)
    with pytest.raises(ServiceError):
        LRUTTLCache(ttl=0)


# -- answers and metrics -------------------------------------------------


def test_answers_match_uncached_advisor(dunnington_report):
    service = TuningService(dunnington_report)
    reference = Advisor(dunnington_report)
    for query in default_query_pool(dunnington_report):
        assert service.query(query) == answer(reference, query)


def test_answers_are_json_scalars(dunnington_report):
    import json

    service = TuningService(dunnington_report)
    for query in default_query_pool(dunnington_report):
        json.dumps(service.query(query))  # must not raise


def test_unknown_query_type_rejected(dunnington_report):
    with pytest.raises(ServiceError, match="unknown query type"):
        answer(Advisor(dunnington_report), object())


def test_metrics_count_hits_and_misses(dunnington_report):
    service = TuningService(dunnington_report)
    query = MatmulTileQuery(level=1)
    service.query(query)
    service.query(query)
    service.query(query)
    metrics = service.metrics()
    assert metrics["queries"] == 3
    assert metrics["misses"] == 1
    assert metrics["hits"] == 2
    assert metrics["hit_rate"] == pytest.approx(2 / 3)
    assert metrics["cache_entries"] == 1
    assert metrics["latency_p50"] >= 0.0
    assert metrics["latency_p99"] >= metrics["latency_p50"]


def test_ttl_service_recomputes_after_expiry(dunnington_report):
    clock = FakeClock()
    service = TuningService(dunnington_report, ttl=5.0, clock=clock)
    query = TileQuery(level=1, n_arrays=2)
    first = service.query(query)
    clock.now = 6.0
    second = service.query(query)
    assert first == second  # recomputed, not wrong
    assert service.metrics()["misses"] == 2


# -- bounded single-flight table ------------------------------------------


def test_single_flight_entries_recycle():
    table = SingleFlightTable(cap=8)
    with table.flight("a"):
        assert table.live() == 1
    # The entry is reclaimed the moment its last holder leaves, so a
    # stream of distinct keys never grows the table.
    for key in range(100):
        with table.flight(key):
            pass
    assert table.live() == 0
    assert table.peak <= 8
    assert table.fallbacks == 0


def test_single_flight_memory_stays_bounded_under_concurrency():
    """Regression for the bound: 16 threads x 500 distinct keys each
    must never hold more than ``cap`` live entries, spilling to the
    fixed stripe array beyond that instead of growing."""
    import threading

    table = SingleFlightTable(cap=32)
    peak_violation = []

    def churn(base):
        for i in range(500):
            with table.flight((base, i % 40)):
                if table.live() > 32:
                    peak_violation.append(table.live())

    threads = [threading.Thread(target=churn, args=(t,)) for t in range(16)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not peak_violation
    assert table.peak <= 32
    assert table.live() == 0


def test_single_flight_fallback_still_excludes():
    # cap=1: the second concurrent key cannot get its own entry and must
    # take a stripe lock — correctness (mutual exclusion per stripe) is
    # preserved, and the spill is counted.
    table = SingleFlightTable(cap=1)
    with table.flight("pinned"):
        with table.flight("spilled"):
            pass
    assert table.fallbacks == 1
    assert table.live() == 0


def test_single_flight_same_key_shares_entry():
    import threading

    table = SingleFlightTable(cap=4)
    order = []
    gate = threading.Barrier(2)

    def hold():
        gate.wait()
        with table.flight("k"):
            order.append("enter")
            order.append("exit")

    threads = [threading.Thread(target=hold) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # Mutual exclusion: enters and exits strictly alternate.
    assert order == ["enter", "exit", "enter", "exit"]
    assert table.peak == 1


def test_service_accepts_single_flight_cap(dunnington_report):
    service = TuningService(dunnington_report, single_flight_cap=2)
    assert service.single_flight.cap == 2
    for query in default_query_pool(dunnington_report):
        service.query(query)
    assert service.single_flight.live() == 0
    assert service.single_flight.peak <= 2


def test_single_flight_rejects_bad_shape():
    with pytest.raises(ServiceError):
        SingleFlightTable(cap=0)
    with pytest.raises(ServiceError):
        SingleFlightTable(stripes=0)


# -- the deterministic concurrent harness --------------------------------


def test_harness_small_run_no_mismatches(dunnington_report):
    service = TuningService(dunnington_report)
    result = run_harness(service, clients=3, queries_per_client=60, seed=5)
    assert result.queries == 180
    assert result.mismatches == 0
    assert result.hit_rate > 0.5
    assert result.queries_per_second > 0


def test_harness_is_deterministic_in_shape(dunnington_report):
    pool = default_query_pool(dunnington_report)
    a = run_harness(TuningService(dunnington_report), clients=2,
                    queries_per_client=40, seed=9, pool=pool)
    b = run_harness(TuningService(dunnington_report), clients=2,
                    queries_per_client=40, seed=9, pool=pool)
    # Same seed deals the same schedule, so the cache sees the same
    # distinct-key set and both runs end with identical hit counts.
    assert a.metrics["hits"] == b.metrics["hits"]
    assert a.metrics["misses"] == b.metrics["misses"]


def test_harness_validates_shape(dunnington_report):
    service = TuningService(dunnington_report)
    with pytest.raises(ServiceError):
        run_harness(service, clients=0)


# -- single-flight error paths -------------------------------------------


def test_single_flight_releases_entry_when_body_raises():
    """An exception inside the critical section must not leak the entry.

    The per-key lock and its refcounted table entry are acquired before
    the protected computation runs; if the computation raises, both
    must be released — otherwise the key's entry (and eventually the
    table's cap) leaks one slot per failing query.
    """
    table = SingleFlightTable(cap=4)
    with pytest.raises(RuntimeError, match="boom"):
        with table.flight("key"):
            raise RuntimeError("boom")
    assert table.live() == 0
    # The same key is immediately usable again, without deadlock.
    with table.flight("key"):
        assert table.live() == 1
    assert table.live() == 0


def test_single_flight_waiters_recover_from_leader_error():
    """Racers blocked behind a failing holder run and clean up."""
    table = SingleFlightTable(cap=4)
    outcomes: list[str] = []
    leader_in, release_leader = threading.Event(), threading.Event()

    def leader():
        try:
            with table.flight("key"):
                leader_in.set()
                release_leader.wait(timeout=5)
                raise RuntimeError("leader failed")
        except RuntimeError:
            outcomes.append("leader-raised")

    def waiter():
        with table.flight("key"):
            outcomes.append("waiter-ran")

    threads = [threading.Thread(target=leader)]
    threads[0].start()
    assert leader_in.wait(timeout=5)
    threads += [threading.Thread(target=waiter) for _ in range(3)]
    for t in threads[1:]:
        t.start()
    release_leader.set()
    for t in threads:
        t.join(timeout=5)
        assert not t.is_alive(), "single-flight deadlocked after error"
    assert outcomes.count("leader-raised") == 1
    assert outcomes.count("waiter-ran") == 3
    assert table.live() == 0


def test_single_flight_fallback_path_releases_on_error():
    """Errors on the striped overflow path must release the stripe too."""
    table = SingleFlightTable(cap=1, stripes=2)
    with table.flight("pinned"):  # occupies the only table slot
        with pytest.raises(ValueError):
            with table.flight("overflow"):  # degrades to a stripe
                raise ValueError("boom")
        assert table.fallbacks == 1
        # The stripe lock is free again: same overflow key re-enters.
        with table.flight("overflow"):
            pass
    assert table.live() == 0


def test_service_query_error_does_not_poison_single_flight(
    dunnington_report,
):
    """A failing answer() leaves the service fully usable."""
    service = TuningService(dunnington_report)
    bad = AggregationQuery(core_a=0, core_b=99999, n_messages=1, message_size=8)
    for _ in range(2):  # repeat: the error path must be re-runnable too
        with pytest.raises(ReproError):
            service.query(bad)
    assert service.single_flight.live() == 0
    good = TileQuery(level=1)
    assert service.query(good) == answer(Advisor(dunnington_report), good)


# -- CLI query specs -----------------------------------------------------


def test_query_from_spec_builds_each_kind(dunnington_report):
    q = query_from_spec("tile", dunnington_report, level=2, n_arrays=3)
    assert q == TileQuery(level=2, n_arrays=3, elem_size=8)
    q = query_from_spec("matmul-tile", dunnington_report, level=1)
    assert q == MatmulTileQuery(level=1)
    q = query_from_spec("streaming-cores", dunnington_report)
    assert q == StreamingCoresQuery()
    q = query_from_spec("aggregate", dunnington_report, core_a=0, core_b=1)
    assert q == AggregationQuery(0, 1, 16, 4096)
    q = query_from_spec("latency", dunnington_report, core_a=0, core_b=2, nbytes=128)
    assert q == CommLatencyQuery(0, 2, 128)
    bq = query_from_spec("bcast", dunnington_report, placement=[0, 1, 2, 3])
    assert bq.placement == (0, 1, 2, 3)
    cq = query_from_spec(
        "co-schedule",
        dunnington_report,
        workloads=["streaming", "zipf"],
        level=2,
        top=1,
    )
    assert cq == CoScheduleQuery(
        workloads=("streaming", "zipf"), level=2, top=1
    )
    assert query_from_spec(
        "co-schedule", dunnington_report, workloads=["streaming"]
    ) == CoScheduleQuery(workloads=("streaming",))


def test_query_from_spec_rejects_unknown_kind(dunnington_report):
    with pytest.raises(ServiceError, match="unknown query kind"):
        query_from_spec("warp-factor", dunnington_report)


def test_query_from_spec_names_missing_parameter(dunnington_report):
    with pytest.raises(ServiceError, match="needs parameter"):
        query_from_spec("aggregate", dunnington_report, core_a=0)
