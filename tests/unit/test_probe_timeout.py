"""Per-future timeouts in the planner's worker pool.

A wedged native probe (stuck perf counter, hung pinned process) must
not stall the whole measurement plan: the executor abandons the
future, counts the timeout, retries the probe, and only aborts the
plan after ``timeout_retries`` fresh attempts.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.backends.base import Backend, ConcurrentLatency
from repro.errors import ConfigurationError, MeasurementTimeout
from repro.planner import MeasurementPlan, MessageProbe, PlanExecutor


class HangingBackend(Backend):
    """Wall-clock backend whose first ``hang_times`` latency calls wedge."""

    wall_clock_bound = True

    def __init__(self, n_cores: int = 4, hang_times: int = 1,
                 hang_seconds: float = 5.0) -> None:
        self.name = "hanging"
        self.n_cores = n_cores
        self.page_size = 4096
        self.hang_seconds = hang_seconds
        self._hangs_left = hang_times
        self._lock = threading.Lock()
        self.calls = 0

    def traversal_cycles(self, arrays, stride):
        return {core: 10.0 for core, _ in arrays}

    def copy_bandwidth(self, cores):
        return {core: 1e9 for core in cores}

    def message_latency(self, core_a, core_b, nbytes):
        with self._lock:
            self.calls += 1
            hang = self._hangs_left > 0
            if hang:
                self._hangs_left -= 1
        if hang:
            time.sleep(self.hang_seconds)
        return 1e-6 * nbytes

    def concurrent_message_latency(self, pairs, nbytes):
        lat = 1e-6 * nbytes * len(pairs)
        return ConcurrentLatency(mean=lat, worst=1.5 * lat)


def _latency_plan(pairs):
    plan = MeasurementPlan()
    for pair in pairs:
        plan.add(MessageProbe(pair=pair, nbytes=256))
    return plan


def test_hung_probe_is_abandoned_and_retried():
    backend = HangingBackend(hang_times=1, hang_seconds=5.0)
    executor = PlanExecutor(backend, jobs=2, probe_timeout=0.2,
                            timeout_retries=2)
    start = time.monotonic()
    results = executor.execute(_latency_plan([(0, 1), (2, 3)]))
    elapsed = time.monotonic() - start
    assert len(results) == 2
    assert results[MessageProbe(pair=(0, 1), nbytes=256)] == pytest.approx(256e-6)
    assert executor.stats.probe_timeouts == 1
    # The plan never waited out the 5 s hang.
    assert elapsed < backend.hang_seconds
    # One retry: the hanging call plus its re-dispatch plus the clean probe.
    assert backend.calls == 3


def test_exhausted_retries_abort_the_plan():
    # Every call hangs, so retries cannot save the plan.  (Single-probe
    # plans run serially; the pool — and thus the guard — needs >= 2.)
    backend = HangingBackend(hang_times=10, hang_seconds=5.0)
    executor = PlanExecutor(backend, jobs=2, probe_timeout=0.1,
                            timeout_retries=1)
    with pytest.raises(MeasurementTimeout, match="no result"):
        executor.execute(_latency_plan([(0, 1), (2, 3)]))
    assert executor.stats.probe_timeouts >= 2


def test_timeout_counts_metric_and_incident():
    backend = HangingBackend(hang_times=1, hang_seconds=5.0)
    backend.incidents = {"timeouts": 0, "retries": 0}
    executor = PlanExecutor(backend, jobs=2, probe_timeout=0.2,
                            timeout_retries=2)
    executor.execute(_latency_plan([(0, 1), (2, 3)]))
    assert executor.metrics.value("counter", "planner.probe_timeouts") == 1
    # The resilience incident channel saw the timeout too, so the suite
    # will mark the phase degraded rather than silently absorbing it.
    assert backend.incidents["timeouts"] == 1


def test_no_timeout_guard_means_no_accounting():
    backend = HangingBackend(hang_times=0)
    executor = PlanExecutor(backend, jobs=2)
    results = executor.execute(_latency_plan([(0, 1), (2, 3)]))
    assert len(results) == 2
    assert executor.stats.probe_timeouts == 0


def test_core_accounting_survives_abandonment():
    # The abandoned probe's cores must be released, or the retry (same
    # cores) could never be scheduled and the plan would stall.
    backend = HangingBackend(hang_times=1, hang_seconds=5.0)
    executor = PlanExecutor(backend, jobs=4, probe_timeout=0.2,
                            timeout_retries=3)
    results = executor.execute(_latency_plan([(0, 1), (0, 2), (1, 3)]))
    assert len(results) == 3
    assert executor.stats.probe_timeouts >= 1


def test_probe_timeout_validation():
    with pytest.raises(ConfigurationError):
        PlanExecutor(HangingBackend(), probe_timeout=0.0)
    with pytest.raises(ConfigurationError):
        PlanExecutor(HangingBackend(), timeout_retries=-1)
