"""Unit tests for the measurement backends."""

import pytest

from repro.backends import SimulatedBackend
from repro.backends.simulated import MeasurementCosts
from repro.errors import MeasurementError
from repro.memsim.paging import ContiguousPaging
from repro.topology import dunnington, finis_terrae
from repro.units import KiB, MiB


class TestSimulatedBackendBasics:
    def test_wraps_machine_as_cluster(self):
        backend = SimulatedBackend(dunnington(), seed=0)
        assert backend.n_cores == 24
        assert backend.page_size == 4 * KiB
        assert backend.name == "dunnington"

    def test_noise_reproducible_by_seed(self):
        a = SimulatedBackend(dunnington(), seed=5)
        b = SimulatedBackend(dunnington(), seed=5)
        va = a.traversal_cycles([(0, 1 * MiB)], 1024)[0]
        vb = b.traversal_cycles([(0, 1 * MiB)], 1024)[0]
        assert va == vb

    def test_zero_noise_matches_engine(self):
        backend = SimulatedBackend(
            dunnington(), seed=5, noise=0.0, paging=ContiguousPaging()
        )
        v1 = backend.traversal_cycles([(0, 16 * KiB)], 1024)[0]
        assert v1 == pytest.approx(3.0)

    def test_negative_noise_rejected(self):
        with pytest.raises(MeasurementError):
            SimulatedBackend(dunnington(), noise=-0.1)


class TestTraversalSemantics:
    def test_cross_node_concurrent_traversal_rejected(self):
        backend = SimulatedBackend(finis_terrae(2), seed=0)
        with pytest.raises(MeasurementError):
            backend.traversal_cycles([(0, 1 * MiB), (16, 1 * MiB)], 1024)

    def test_global_core_ids_translate(self):
        backend = SimulatedBackend(finis_terrae(2), seed=0)
        # Core 16 is local core 0 of node 1; measuring it must work.
        out = backend.traversal_cycles([(16, 16 * KiB)], 1024)
        assert 16 in out and out[16] > 0


class TestCopyBandwidth:
    def test_cross_node_groups_do_not_interfere(self):
        backend = SimulatedBackend(finis_terrae(2), seed=0, noise=0.0)
        both = backend.copy_bandwidth([0, 16])
        solo = backend.copy_bandwidth([0])
        assert both[0] == pytest.approx(solo[0])

    def test_same_bus_pair_contends(self):
        backend = SimulatedBackend(finis_terrae(2), seed=0, noise=0.0)
        pair = backend.copy_bandwidth([0, 1])
        solo = backend.copy_bandwidth([0])
        assert pair[0] < 0.75 * solo[0]


class TestVirtualTimeAccounting:
    def test_every_measurement_charges(self):
        backend = SimulatedBackend(dunnington(), seed=0)
        backend.take_virtual_time()
        backend.traversal_cycles([(0, 1 * MiB)], 1024)
        t1 = backend.virtual_time
        assert t1 > 0
        backend.copy_bandwidth([0, 1])
        t2 = backend.virtual_time
        assert t2 > t1
        backend.message_latency(0, 1, 32 * KiB)
        assert backend.virtual_time > t2

    def test_take_virtual_time_resets(self):
        backend = SimulatedBackend(dunnington(), seed=0)
        backend.copy_bandwidth([0])
        assert backend.take_virtual_time() > 0
        assert backend.virtual_time == 0.0

    def test_custom_costs_respected(self):
        costs = MeasurementCosts(stream_setup=100.0, stream_min_sample=0.0)
        backend = SimulatedBackend(dunnington(), seed=0, costs=costs)
        backend.take_virtual_time()
        backend.copy_bandwidth([0])
        assert backend.virtual_time == pytest.approx(100.0)


class TestMessages:
    def test_latency_positive_and_layered(self):
        backend = SimulatedBackend(dunnington(), seed=0, noise=0.0)
        fast = backend.message_latency(0, 12, 32 * KiB)
        slow = backend.message_latency(0, 3, 32 * KiB)
        assert 0 < fast < slow

    def test_concurrent_latency_fields(self):
        backend = SimulatedBackend(finis_terrae(2), seed=0, noise=0.0)
        result = backend.concurrent_message_latency(
            [(0, 16), (1, 17)], 16 * KiB
        )
        assert result.worst >= result.mean > 0
