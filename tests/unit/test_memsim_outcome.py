"""Unit tests for the traversal outcome cache and shared paging layer."""

import numpy as np
import pytest

from repro.memsim import (
    GLOBAL_OUTCOME_CACHE,
    TraversalOutcomeCache,
    clear_global_cache,
    stream_identity,
)
from repro.memsim.paging import AddressSpace, RandomPaging
from repro.memsim.prefetch import NO_PREFETCH
from repro.memsim.traversal import Traversal, TraversalEngine
from repro.obs.metrics import MetricsRegistry
from repro.topology import dempsey
from repro.units import KiB


def make_engine(**kw) -> TraversalEngine:
    return TraversalEngine(dempsey(), prefetch=NO_PREFETCH, **kw)


class TestStreamIdentity:
    def test_same_seed_same_identity(self):
        assert stream_identity(np.random.default_rng(7)) == stream_identity(
            np.random.default_rng(7)
        )

    def test_different_seeds_differ(self):
        assert stream_identity(np.random.default_rng(7)) != stream_identity(
            np.random.default_rng(8)
        )

    def test_spawning_advances_identity(self):
        rng = np.random.default_rng(7)
        before = stream_identity(rng)
        rng.bit_generator.seed_seq.spawn(2)
        after = stream_identity(rng)
        assert before != after
        assert after[2] == before[2] + 2  # n_children_spawned

    def test_drawing_values_does_not_change_identity(self):
        # Child streams derive from the seed sequence, not the
        # generator state: noise draws must not perturb the cache key.
        rng = np.random.default_rng(7)
        before = stream_identity(rng)
        rng.normal(size=100)
        assert stream_identity(rng) == before

    def test_uninspectable_generator_returns_none(self):
        class Opaque:
            pass

        assert stream_identity(Opaque()) is None


class TestTraversalOutcomeCache:
    def test_lru_eviction(self):
        cache = TraversalOutcomeCache(max_entries=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert cache.get(("a",)) == 1  # refresh "a"
        cache.put(("c",), 3)  # evicts "b"
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == 1
        assert cache.get(("c",)) == 3

    def test_counters_and_clear(self):
        cache = TraversalOutcomeCache()
        assert cache.get(("x",)) is None
        cache.put(("x",), 42)
        assert cache.get(("x",)) == 42
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}
        cache.clear()
        assert cache.stats() == {"hits": 0, "misses": 0, "entries": 0}

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            TraversalOutcomeCache(max_entries=0)


class TestEngineCaching:
    def setup_method(self):
        clear_global_cache()
        AddressSpace.clear_shared()

    def test_repeat_run_hits_and_matches(self):
        cache = TraversalOutcomeCache()
        engine = make_engine(outcome_cache=cache)
        travs = [Traversal(0, 64 * KiB, 64)]
        first = engine.run(travs, rng=np.random.default_rng(3))
        second = engine.run(travs, rng=np.random.default_rng(3))
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert first == second

    def test_hit_returns_independent_copy(self):
        cache = TraversalOutcomeCache()
        engine = make_engine(outcome_cache=cache)
        travs = [Traversal(0, 64 * KiB, 64)]
        first = engine.run(travs, rng=np.random.default_rng(3))
        first.cycles_per_access[0] = -1.0
        first.miss_fraction[0].append(99.0)
        second = engine.run(travs, rng=np.random.default_rng(3))
        assert second.cycles_per_access[0] != -1.0
        assert 99.0 not in second.miss_fraction[0]

    def test_hit_leaves_rng_in_miss_state(self):
        """Cached and uncached runs must consume identical spawn keys."""
        cache = TraversalOutcomeCache()
        cached_engine = make_engine(outcome_cache=cache)
        bypass_engine = make_engine(outcome_cache=None)
        travs = [Traversal(0, 64 * KiB, 64), Traversal(1, 32 * KiB, 64)]
        cached_engine.run(travs, rng=np.random.default_rng(5))  # prime

        rng_cached = np.random.default_rng(5)
        rng_bypass = np.random.default_rng(5)
        hit = cached_engine.run(travs, rng=rng_cached)
        miss = bypass_engine.run(travs, rng=rng_bypass)
        assert cache.stats()["hits"] == 1
        assert hit == miss
        assert stream_identity(rng_cached) == stream_identity(rng_bypass)
        # Follow-up runs key identically either way.
        assert cached_engine.run(travs, rng=rng_cached) == bypass_engine.run(
            travs, rng=rng_bypass
        )

    def test_bypassed_engine_never_consults_cache(self):
        engine = make_engine(outcome_cache=None)
        before = GLOBAL_OUTCOME_CACHE.stats()
        engine.run([Traversal(0, 64 * KiB, 64)], rng=np.random.default_rng(3))
        assert GLOBAL_OUTCOME_CACHE.stats() == before

    def test_traversal_order_is_part_of_the_key(self):
        """Child streams are positional: a permutation is a different run."""
        cache = TraversalOutcomeCache()
        engine = make_engine(outcome_cache=cache)
        a, b = Traversal(0, 64 * KiB, 64), Traversal(1, 256 * KiB, 64)
        engine.run([a, b], rng=np.random.default_rng(3))
        engine.run([b, a], rng=np.random.default_rng(3))
        assert cache.stats()["misses"] == 2
        assert cache.stats()["hits"] == 0

    def test_custom_policy_without_token_bypasses_cache(self):
        class OpaquePolicy(RandomPaging):
            def cache_token(self):
                return None

        cache = TraversalOutcomeCache()
        engine = make_engine(outcome_cache=cache, paging=OpaquePolicy())
        engine.run([Traversal(0, 64 * KiB, 64)], rng=np.random.default_rng(3))
        engine.run([Traversal(0, 64 * KiB, 64)], rng=np.random.default_rng(3))
        assert cache.stats() == {"hits": 0, "misses": 0, "entries": 0}

    def test_equal_valued_machines_share_outcomes(self):
        cache = TraversalOutcomeCache()
        one = TraversalEngine(dempsey(), prefetch=NO_PREFETCH, outcome_cache=cache)
        two = TraversalEngine(dempsey(), prefetch=NO_PREFETCH, outcome_cache=cache)
        travs = [Traversal(0, 64 * KiB, 64)]
        first = one.run(travs, rng=np.random.default_rng(3))
        second = two.run(travs, rng=np.random.default_rng(3))
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}
        assert first == second

    def test_bind_metrics_exports_counters(self):
        cache = TraversalOutcomeCache()
        engine = make_engine(outcome_cache=cache)
        metrics = MetricsRegistry()
        engine.bind_metrics(metrics)
        travs = [Traversal(0, 64 * KiB, 64)]
        engine.run(travs, rng=np.random.default_rng(3))
        engine.run(travs, rng=np.random.default_rng(3))
        assert metrics.counter("memsim.outcome.hits").value == 1
        assert metrics.counter("memsim.outcome.misses").value == 1


class TestSharedAddressSpaces:
    def setup_method(self):
        AddressSpace.clear_shared()

    def test_same_stream_shares_instance(self):
        policy = RandomPaging()
        a = AddressSpace.shared(4096, policy, 64 * KiB, np.random.default_rng(9))
        b = AddressSpace.shared(4096, policy, 64 * KiB, np.random.default_rng(9))
        assert a is b
        assert not a.page_table.flags.writeable

    def test_distinct_streams_get_distinct_placements(self):
        policy = RandomPaging()
        a = AddressSpace.shared(4096, policy, 64 * KiB, np.random.default_rng(9))
        b = AddressSpace.shared(4096, policy, 64 * KiB, np.random.default_rng(10))
        assert a is not b
        assert not np.array_equal(a.page_table, b.page_table)

    def test_shared_placement_equals_private_construction(self):
        policy = RandomPaging()
        shared = AddressSpace.shared(4096, policy, 64 * KiB, np.random.default_rng(9))
        private = AddressSpace(4096, policy, 64 * KiB, np.random.default_rng(9))
        np.testing.assert_array_equal(shared.page_table, private.page_table)

    def test_bounded(self):
        policy = RandomPaging()
        old = AddressSpace.SHARED_MAX_ENTRIES
        AddressSpace.SHARED_MAX_ENTRIES = 4
        try:
            for seed in range(8):
                AddressSpace.shared(
                    4096, policy, 64 * KiB, np.random.default_rng(seed)
                )
            assert len(AddressSpace._shared) <= 4
        finally:
            AddressSpace.SHARED_MAX_ENTRIES = old
            AddressSpace.clear_shared()
