"""Failure injection: broken backends must fail loudly, not mis-detect.

A real deployment can hit broken timers (zero/negative/NaN readings),
dead cores, or backends that return constants.  The detectors must
raise :class:`MeasurementError`/:class:`DetectionError` instead of
producing a confidently wrong report — and, when the backend is
hardened with the resilience layer, transient faults must be absorbed
while persistent faults degrade only the affected phase.
"""

import math

import pytest

from repro import (
    FaultInjectingBackend,
    FaultPlan,
    HardenedBackend,
    ResiliencePolicy,
    RetryPolicy,
    ServetSuite,
    SimulatedBackend,
    dempsey,
)
from repro.backends.base import Backend, ConcurrentLatency
from repro.core.cache_size import detect_caches
from repro.core.comm_costs import detect_comm_layers
from repro.core.mcalibrator import run_mcalibrator
from repro.core.memory_overhead import characterize_memory_overhead
from repro.errors import DetectionError, MeasurementError
from repro.units import KiB


class FakeBackend(Backend):
    """Backend returning scripted values for failure scenarios."""

    def __init__(self, cycles=10.0, bandwidth=1e9, latency=1e-6, n_cores=4):
        self.name = "fake"
        self.n_cores = n_cores
        self.page_size = 4096
        self.virtual_time = 0.0
        self._cycles = cycles
        self._bandwidth = bandwidth
        self._latency = latency

    def _value(self, scripted, *args):
        return scripted(*args) if callable(scripted) else scripted

    def traversal_cycles(self, arrays, stride):
        return {core: self._value(self._cycles, nbytes) for core, nbytes in arrays}

    def copy_bandwidth(self, cores):
        return {core: self._value(self._bandwidth, core) for core in cores}

    def message_latency(self, core_a, core_b, nbytes):
        return self._value(self._latency, core_a, core_b)

    def concurrent_message_latency(self, pairs, nbytes):
        value = self._value(self._latency, *pairs[0])
        return ConcurrentLatency(mean=value, worst=value)


class TestBrokenTraversalTimer:
    def test_constant_cycles_raise_detection_error(self):
        with pytest.raises(DetectionError):
            detect_caches(FakeBackend(cycles=42.0))

    def test_nan_cycles_raise_measurement_error(self):
        with pytest.raises(MeasurementError):
            run_mcalibrator(FakeBackend(cycles=float("nan")), samples=1)

    def test_zero_cycles_raise_measurement_error(self):
        with pytest.raises(MeasurementError):
            run_mcalibrator(FakeBackend(cycles=0.0), samples=1)

    def test_negative_cycles_raise_measurement_error(self):
        with pytest.raises(MeasurementError):
            run_mcalibrator(FakeBackend(cycles=-5.0), samples=1)

    def test_infinite_cycles_raise_measurement_error(self):
        with pytest.raises(MeasurementError):
            run_mcalibrator(FakeBackend(cycles=math.inf), samples=1)


class TestBrokenBandwidthMeter:
    def test_zero_reference_bandwidth_rejected(self):
        with pytest.raises(MeasurementError):
            characterize_memory_overhead(FakeBackend(bandwidth=0.0))

    def test_nan_reference_bandwidth_rejected(self):
        with pytest.raises(MeasurementError):
            characterize_memory_overhead(FakeBackend(bandwidth=float("nan")))

    def test_uniform_bandwidth_yields_no_overhead_levels(self):
        result = characterize_memory_overhead(FakeBackend(bandwidth=2e9))
        assert result.n_levels == 0  # no contention is a valid answer


class TestBrokenLatencyMeter:
    def test_zero_latency_rejected(self):
        with pytest.raises(MeasurementError):
            detect_comm_layers(FakeBackend(latency=0.0), 16 * KiB)

    def test_nan_latency_rejected(self):
        with pytest.raises(MeasurementError):
            detect_comm_layers(FakeBackend(latency=float("nan")), 16 * KiB)

    def test_uniform_latency_yields_single_layer(self):
        result = detect_comm_layers(FakeBackend(latency=2e-6), 16 * KiB)
        assert result.n_layers == 1


class TestPartialBreakage:
    def test_one_dead_core_pair_poisons_loudly(self):
        def latency(a, b):
            return float("inf") if (a, b) == (0, 1) else 2e-6

        backend = FakeBackend(latency=latency)
        # Infinity is technically > 0; the clusterer will isolate it
        # into its own "layer" — which is at least visible — but NaN
        # must be rejected outright:
        def nan_latency(a, b):
            return float("nan") if (a, b) == (2, 3) else 2e-6

        with pytest.raises(MeasurementError):
            detect_comm_layers(FakeBackend(latency=nan_latency), 16 * KiB)


class TestScriptedFaultScenarios:
    """Scripted fault plans through FaultInjectingBackend + retry policy."""

    def hardened(self, plan: FaultPlan, attempts: int = 6) -> HardenedBackend:
        inner = SimulatedBackend(dempsey(), seed=42)
        return HardenedBackend(
            FaultInjectingBackend(inner, plan),
            ResiliencePolicy(retry=RetryPolicy(max_attempts=attempts)),
        )

    def test_transient_nan_fault_recovered_by_retry(self):
        clean = detect_caches(SimulatedBackend(dempsey(), seed=42))
        backend = self.hardened(FaultPlan(seed=3, nan_rate=0.05))
        detection = detect_caches(backend)
        assert detection.sizes == clean.sizes
        # Recovery happened (the plan did inject faults) but was absorbed.
        assert backend.inner.log.corrupted > 0

    def test_transient_spike_fault_recovered_by_sampling_and_retry(self):
        # Spikes pass the plausibility validators (they are finite and
        # positive), so retry alone cannot catch them: median
        # repeat-sampling votes them out instead.
        from repro import SamplingPolicy

        clean = detect_caches(SimulatedBackend(dempsey(), seed=42))
        inner = SimulatedBackend(dempsey(), seed=42)
        backend = HardenedBackend(
            FaultInjectingBackend(
                inner, FaultPlan(seed=5, spike_rate=0.03, spike_factor=80.0)
            ),
            ResiliencePolicy(
                retry=RetryPolicy(max_attempts=4),
                sampling=SamplingPolicy(samples=3),
            ),
        )
        assert detect_caches(backend).sizes == clean.sizes

    def test_persistent_fault_degrades_phase_not_suite(self):
        # A permanently dead bandwidth meter kills the memory-overhead
        # phase; the suite still delivers caches and communication.
        plan = FaultPlan(seed=1, nan_rate=1.0, only=("bandwidth",))
        report = ServetSuite(self.hardened(plan, attempts=2)).run(strict=False)
        assert report.phase_status["memory_overhead"] == "failed"
        assert "memory_overhead" in report.phase_errors
        assert report.memory_levels == []
        assert report.phase_status["cache_size"] == "ok"
        assert report.phase_status["communication_costs"] == "ok"
        assert report.cache_sizes  # caches were still detected
        assert report.comm_layers  # comm layers were still measured

    def test_persistent_fault_still_raises_in_strict_mode(self):
        plan = FaultPlan(seed=1, nan_rate=1.0, only=("bandwidth",))
        with pytest.raises(MeasurementError):
            ServetSuite(self.hardened(plan, attempts=2)).run(strict=True)
