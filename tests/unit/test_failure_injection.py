"""Failure injection: broken backends must fail loudly, not mis-detect.

A real deployment can hit broken timers (zero/negative/NaN readings),
dead cores, or backends that return constants.  The detectors must
raise :class:`MeasurementError`/:class:`DetectionError` instead of
producing a confidently wrong report.
"""

import math

import pytest

from repro.backends.base import Backend, ConcurrentLatency
from repro.core.cache_size import detect_caches
from repro.core.comm_costs import detect_comm_layers
from repro.core.mcalibrator import run_mcalibrator
from repro.core.memory_overhead import characterize_memory_overhead
from repro.errors import DetectionError, MeasurementError
from repro.units import KiB


class FakeBackend(Backend):
    """Backend returning scripted values for failure scenarios."""

    def __init__(self, cycles=10.0, bandwidth=1e9, latency=1e-6, n_cores=4):
        self.name = "fake"
        self.n_cores = n_cores
        self.page_size = 4096
        self.virtual_time = 0.0
        self._cycles = cycles
        self._bandwidth = bandwidth
        self._latency = latency

    def _value(self, scripted, *args):
        return scripted(*args) if callable(scripted) else scripted

    def traversal_cycles(self, arrays, stride):
        return {core: self._value(self._cycles, nbytes) for core, nbytes in arrays}

    def copy_bandwidth(self, cores):
        return {core: self._value(self._bandwidth, core) for core in cores}

    def message_latency(self, core_a, core_b, nbytes):
        return self._value(self._latency, core_a, core_b)

    def concurrent_message_latency(self, pairs, nbytes):
        value = self._value(self._latency, *pairs[0])
        return ConcurrentLatency(mean=value, worst=value)


class TestBrokenTraversalTimer:
    def test_constant_cycles_raise_detection_error(self):
        with pytest.raises(DetectionError):
            detect_caches(FakeBackend(cycles=42.0))

    def test_nan_cycles_raise_measurement_error(self):
        with pytest.raises(MeasurementError):
            run_mcalibrator(FakeBackend(cycles=float("nan")), samples=1)

    def test_zero_cycles_raise_measurement_error(self):
        with pytest.raises(MeasurementError):
            run_mcalibrator(FakeBackend(cycles=0.0), samples=1)

    def test_negative_cycles_raise_measurement_error(self):
        with pytest.raises(MeasurementError):
            run_mcalibrator(FakeBackend(cycles=-5.0), samples=1)

    def test_infinite_cycles_raise_measurement_error(self):
        with pytest.raises(MeasurementError):
            run_mcalibrator(FakeBackend(cycles=math.inf), samples=1)


class TestBrokenBandwidthMeter:
    def test_zero_reference_bandwidth_rejected(self):
        with pytest.raises(MeasurementError):
            characterize_memory_overhead(FakeBackend(bandwidth=0.0))

    def test_nan_reference_bandwidth_rejected(self):
        with pytest.raises(MeasurementError):
            characterize_memory_overhead(FakeBackend(bandwidth=float("nan")))

    def test_uniform_bandwidth_yields_no_overhead_levels(self):
        result = characterize_memory_overhead(FakeBackend(bandwidth=2e9))
        assert result.n_levels == 0  # no contention is a valid answer


class TestBrokenLatencyMeter:
    def test_zero_latency_rejected(self):
        with pytest.raises(MeasurementError):
            detect_comm_layers(FakeBackend(latency=0.0), 16 * KiB)

    def test_nan_latency_rejected(self):
        with pytest.raises(MeasurementError):
            detect_comm_layers(FakeBackend(latency=float("nan")), 16 * KiB)

    def test_uniform_latency_yields_single_layer(self):
        result = detect_comm_layers(FakeBackend(latency=2e-6), 16 * KiB)
        assert result.n_layers == 1


class TestPartialBreakage:
    def test_one_dead_core_pair_poisons_loudly(self):
        def latency(a, b):
            return float("inf") if (a, b) == (0, 1) else 2e-6

        backend = FakeBackend(latency=latency)
        # Infinity is technically > 0; the clusterer will isolate it
        # into its own "layer" — which is at least visible — but NaN
        # must be rejected outright:
        def nan_latency(a, b):
            return float("nan") if (a, b) == (2, 3) else 2e-6

        with pytest.raises(MeasurementError):
            detect_comm_layers(FakeBackend(latency=nan_latency), 16 * KiB)
