"""Unit tests for the extra collectives and report-driven selection."""

import pytest

from repro.autotune.collectives import (
    ReportCommModel,
    choose_bcast,
    fit_layer_params,
    locality_groups,
    predict_flat_bcast,
    predict_hierarchical_bcast,
)
from repro.netsim import default_comm_config
from repro.simmpi import World
from repro.simmpi.collectives import alltoall, hierarchical_bcast, reduce, scatter
from repro.topology import Cluster, dunnington, finis_terrae
from repro.units import KiB

from .test_core_report import sample_report


def run_world(n, prog, cluster=None):
    cluster = cluster or Cluster("dunnington", dunnington())
    world = World(cluster, default_comm_config(cluster), list(range(n)))
    world.spawn_all(prog)
    return world.run()


class TestReduceScatterAlltoall:
    @pytest.mark.parametrize("n,root", [(2, 0), (5, 3), (8, 0)])
    def test_reduce_message_count(self, n, root):
        def prog(rank):
            yield from reduce(rank, root, 1024)

        result = run_world(n, prog)
        assert result.messages == n - 1

    @pytest.mark.parametrize("n", [2, 4, 7])
    def test_scatter_message_count(self, n):
        def prog(rank):
            yield from scatter(rank, 0, 2048)

        result = run_world(n, prog)
        assert result.messages == n - 1

    @pytest.mark.parametrize("n", [2, 4, 8, 6])
    def test_alltoall_message_count(self, n):
        def prog(rank):
            yield from alltoall(rank, 512)

        result = run_world(n, prog)
        assert result.messages == n * (n - 1)

    def test_reduce_then_bcast_composes(self):
        def prog(rank):
            yield from reduce(rank, 0, 1024)
            yield from rank.bcast(0, 1024)

        result = run_world(6, prog)
        assert result.messages == 2 * 5


class TestHierarchicalBcast:
    def test_message_count_one_per_remote_group(self):
        cluster = finis_terrae(2)
        groups = [list(range(16)), list(range(16, 32))]

        def prog(rank):
            yield from hierarchical_bcast(rank, 0, 4096, groups)

        world = World(cluster, default_comm_config(cluster), list(range(32)))
        world.spawn_all(prog)
        result = world.run()
        # 1 inter-node + 15 + 15 intra-node messages.
        assert result.messages == 31
        assert result.per_layer_messages.get("inter-node") == 1

    def test_root_in_second_group(self):
        cluster = finis_terrae(2)
        groups = [list(range(16)), list(range(16, 32))]

        def prog(rank):
            yield from hierarchical_bcast(rank, 20, 4096, groups)

        world = World(cluster, default_comm_config(cluster), list(range(32)))
        world.spawn_all(prog)
        assert world.run().per_layer_messages.get("inter-node") == 1


class TestLocalityGroups:
    def test_cluster_groups_match_nodes(self, ft_report):
        groups = locality_groups(ft_report, list(range(32)))
        assert groups == [list(range(16)), list(range(16, 32))]

    def test_single_node_single_group(self, dunnington_report):
        groups = locality_groups(dunnington_report, list(range(12)))
        # All Dunnington pairs have a faster-than-worst partner chain?
        # Layer 2 (inter-processor) is the slowest; the L2/L3 pairs
        # connect the cores within each socket only.
        socket0 = [r for r in range(12)]
        # Ranks on cores 0..11 span all four sockets; the components
        # must match the sockets' core subsets.
        flat = sorted(r for g in groups for r in g)
        assert flat == socket0
        assert all(len(g) == 3 for g in groups)  # cores {3s,3s+1,3s+2}


class TestFittedModel:
    def test_fit_recovers_affine_parameters(self, ft_report):
        inter = ft_report.comm_layers[1]
        params = fit_layer_params(inter)
        # The substrate's true inter-node parameters are alpha=6us,
        # beta=0.9GB/s; the fit sees them through measurement noise.
        assert params.base_latency == pytest.approx(6e-6, rel=0.5)
        assert params.bandwidth == pytest.approx(0.9e9, rel=0.2)
        assert params.contention_factor == pytest.approx(0.26, rel=0.3)

    def test_fit_without_curves_falls_back(self):
        layer = sample_report().comm_layers[1]
        params = fit_layer_params(layer)
        assert params.base_latency == layer.latency

    def test_model_lookup_by_core_pair(self, ft_report):
        model = ReportCommModel(ft_report)
        intra = model.params_for_pair(None, 0, 1)
        inter = model.params_for_pair(None, 0, 16)
        assert intra.base_latency < inter.base_latency


class TestChooseBcast:
    def test_hierarchical_wins_small_messages_on_cluster(self, ft_report):
        choice = choose_bcast(ft_report, list(range(32)), 16 * KiB)
        assert choice.algorithm == "hierarchical"
        assert choice.predicted_speedup > 1.2

    def test_flat_wins_single_node(self, dunnington_report):
        choice = choose_bcast(dunnington_report, list(range(8)), 16 * KiB)
        # One node: groups may split by socket, but crossing the
        # "slow" intra-node layer is cheap — either answer must at
        # least produce finite, ordered predictions.
        assert choice.flat_time > 0
        assert choice.algorithm in ("flat", "hierarchical")

    def test_prediction_matches_execution_ordering(self, ft_report):
        cluster = finis_terrae(2)
        config = default_comm_config(cluster)
        placement = list(range(32))
        for nbytes in (1 * KiB, 16 * KiB, 256 * KiB):
            choice = choose_bcast(ft_report, placement, nbytes)
            groups = choice.groups

            def flat_prog(rank, nbytes=nbytes):
                yield from rank.bcast(0, nbytes)

            def hier_prog(rank, nbytes=nbytes, groups=groups):
                yield from hierarchical_bcast(rank, 0, nbytes, groups)

            times = {}
            for name, prog in (("flat", flat_prog), ("hierarchical", hier_prog)):
                world = World(cluster, config, placement)
                world.spawn_all(prog)
                times[name] = world.run().makespan
            executed_winner = min(times, key=times.get)
            assert choice.algorithm == executed_winner, (nbytes, times)

    def test_flat_prediction_positive(self, ft_report):
        assert predict_flat_bcast(ft_report, list(range(8)), 4096) > 0

    def test_hierarchical_requires_root_coverage(self, ft_report):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            predict_hierarchical_bcast(
                ft_report, list(range(8)), 4096, groups=[[1, 2], [3, 4]]
            )
