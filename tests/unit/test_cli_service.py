"""Unit tests for the service-layer CLI: serve, query, registry."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def populated(tmp_path_factory):
    """A registry with one dempsey report in it (and the loose file)."""
    root = tmp_path_factory.mktemp("cli-registry")
    registry = root / "registry"
    report = root / "report.json"
    code = main(
        [
            "run",
            "--machine",
            "dempsey",
            "--noise",
            "0",
            "-o",
            str(report),
            "--registry",
            str(registry),
        ]
    )
    assert code == 0
    return registry, report


def test_run_publishes_to_registry(populated, capsys):
    registry, _ = populated
    assert main(["registry", "list", "--registry", str(registry)]) == 0
    out = capsys.readouterr().out
    assert "v1" in out and "dempsey" in out


def test_registry_list_empty(tmp_path, capsys):
    assert main(["registry", "list", "--registry", str(tmp_path / "nope")]) == 0
    assert "is empty" in capsys.readouterr().out


def test_report_accepts_registry_spec(populated, capsys):
    registry, _ = populated
    assert main(["report", "latest", "--registry", str(registry)]) == 0
    assert "dempsey" in capsys.readouterr().out


def test_advise_accepts_registry_spec(populated, capsys):
    registry, _ = populated
    assert main(["advise", "latest", "--registry", str(registry)]) == 0
    assert "matmul tile for L1" in capsys.readouterr().out


def test_report_path_behavior_unchanged(populated, capsys):
    _, report = populated
    assert main(["report", str(report)]) == 0
    assert "dempsey" in capsys.readouterr().out


def test_serve_runs_harness_cleanly(populated, capsys):
    registry, _ = populated
    code = main(
        [
            "serve",
            "--registry",
            str(registry),
            "--clients",
            "4",
            "--queries",
            "100",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "hit rate" in out
    assert "all answers match the uncached reference" in out


def test_serve_from_report_file(populated, capsys):
    _, report = populated
    code = main(
        ["serve", "--report", str(report), "--clients", "2", "--queries", "50"]
    )
    assert code == 0
    assert "q/s" in capsys.readouterr().out


def test_query_returns_json(populated, capsys):
    registry, _ = populated
    code = main(
        [
            "query",
            "latest",
            "matmul-tile",
            "--level",
            "2",
            "--registry",
            str(registry),
        ]
    )
    assert code == 0
    data = json.loads(capsys.readouterr().out)
    assert data["side"] > 0


def test_query_latency_with_pair(populated, capsys):
    registry, _ = populated
    code = main(
        [
            "query",
            "latest",
            "latency",
            "--pair",
            "0,1",
            "--size",
            "4096",
            "--registry",
            str(registry),
        ]
    )
    assert code == 0
    data = json.loads(capsys.readouterr().out)
    assert data["latency"] > 0


def test_registry_refresh_up_to_date(populated, capsys):
    registry, _ = populated
    code = main(
        [
            "registry",
            "refresh",
            "--registry",
            str(registry),
            "--machine",
            "dempsey",
            "--noise",
            "0",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "unchanged" in out and "up_to_date" in out


def test_registry_gc(populated, capsys):
    registry, _ = populated
    assert main(["registry", "gc", "--registry", str(registry), "--keep", "5"]) == 0
    assert "removed 0 file(s)" in capsys.readouterr().out


def test_missing_registry_spec_fails_cleanly(tmp_path, capsys):
    code = main(["advise", "latest", "--registry", str(tmp_path / "empty")])
    assert code == 1
    assert "error:" in capsys.readouterr().err
