"""CLI coverage for the ``servet fleet`` command family."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.fleet import FleetFaultPlan, FleetReport


@pytest.fixture(scope="module")
def spec_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("fleet") / "fleet.json"
    assert main([
        "fleet", "generate", "-o", str(path),
        "--machines", "12", "--classes", "4", "--seed", "11",
    ]) == 0
    return path


def test_generate_writes_spec(spec_path, capsys):
    data = json.loads(spec_path.read_text())
    assert len(data["machines"]) == 12


def test_survey_status_roundtrip(spec_path, tmp_path, capsys):
    store = tmp_path / "store"
    report_path = tmp_path / "report.json"
    checkpoint = tmp_path / "checkpoint.json"
    code = main([
        "fleet", "survey", str(spec_path),
        "--store", str(store),
        "--checkpoint", str(checkpoint),
        "--workers", "4",
        "-o", str(report_path),
        "--metrics", str(tmp_path / "metrics.json"),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "12 machine(s) in 4 hardware class(es)" in out
    assert "Dedup: 4 measurement(s) cover 12 machine(s)" in out
    assert report_path.exists()
    assert checkpoint.exists()
    assert (store / "fleet_report.json").exists()
    assert (tmp_path / "metrics.json").exists()

    report = FleetReport.load(report_path)
    assert report.complete

    # status accepts both the report file and the store directory.
    assert main(["fleet", "status", str(report_path)]) == 0
    assert main(["fleet", "status", str(store)]) == 0
    status_out = capsys.readouterr().out
    assert "ok" in status_out


def test_survey_with_fault_plan(spec_path, tmp_path, capsys):
    plan_path = tmp_path / "faults.json"
    FleetFaultPlan(seed=1, crash_rate=0.2, respawn_seconds=120.0).save(plan_path)
    code = main([
        "fleet", "survey", str(spec_path),
        "--store", str(tmp_path / "store"),
        "--fault-plan", str(plan_path),
    ])
    assert code == 0
    assert "Machines: 12 ok" in capsys.readouterr().out


def test_resume_requires_checkpoint(spec_path, tmp_path, capsys):
    code = main([
        "fleet", "resume", str(spec_path),
        "--store", str(tmp_path / "store"),
    ])
    assert code == 2
    assert "requires --checkpoint" in capsys.readouterr().err
