"""Unit tests for the mcalibrator driver (Fig. 1)."""

import numpy as np
import pytest

from repro.backends import SimulatedBackend
from repro.core.mcalibrator import (
    McalibratorResult,
    default_sizes,
    run_mcalibrator,
)
from repro.errors import MeasurementError
from repro.topology import dempsey
from repro.units import KiB, MiB


class TestDefaultSizes:
    def test_doubles_then_linear(self):
        sizes = default_sizes(1 * KiB, 5 * MiB)
        assert sizes[:3] == [1 * KiB, 2 * KiB, 4 * KiB]
        assert 2 * MiB in sizes
        tail = [s for s in sizes if s >= 2 * MiB]
        assert tail == [2 * MiB, 3 * MiB, 4 * MiB, 5 * MiB]

    def test_every_cache_size_of_the_paper_is_probed(self):
        sizes = set(default_sizes())
        for cs in (16 * KiB, 32 * KiB, 64 * KiB, 512 * KiB, 2 * MiB, 3 * MiB,
                   9 * MiB, 12 * MiB, 256 * KiB):
            assert cs in sizes

    def test_rejects_inverted_range(self):
        with pytest.raises(MeasurementError):
            default_sizes(4 * MiB, 1 * MiB)


class TestMcalibratorResult:
    def test_gradients_definition(self):
        res = McalibratorResult(
            sizes=np.array([1, 2, 4]), cycles=np.array([2.0, 4.0, 4.0]),
            stride=1024, core=0,
        )
        assert list(res.gradients) == [2.0, 1.0]

    def test_slice(self):
        res = McalibratorResult(
            sizes=np.array([1, 2, 4, 8]),
            cycles=np.array([1.0, 2.0, 3.0, 4.0]),
            stride=1024,
            core=0,
        )
        sub = res.slice(1, 3)
        assert list(sub.sizes) == [2, 4]

    def test_table_rows(self):
        res = McalibratorResult(
            sizes=np.array([1024, 2048]), cycles=np.array([3.0, 6.0]),
            stride=1024, core=0,
        )
        rows = res.table()
        assert rows[0][0] == "1KB"
        assert rows[0][2] == pytest.approx(2.0)
        assert np.isnan(rows[1][2])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(MeasurementError):
            McalibratorResult(
                sizes=np.array([1, 2]), cycles=np.array([1.0]), stride=1024, core=0
            )

    def test_rejects_unsorted_sizes(self):
        with pytest.raises(MeasurementError):
            McalibratorResult(
                sizes=np.array([2, 1]), cycles=np.array([1.0, 1.0]),
                stride=1024, core=0,
            )


class TestRunMcalibrator:
    def test_curve_is_roughly_monotone(self):
        backend = SimulatedBackend(dempsey(), seed=0)
        res = run_mcalibrator(backend, max_cache=8 * MiB, samples=2)
        # Plateaus plus rises: the final plateau must dominate the first.
        assert res.cycles[-1] > 10 * res.cycles[0]

    def test_l1_cliff_visible_at_16kb(self):
        backend = SimulatedBackend(dempsey(), seed=0)
        res = run_mcalibrator(backend, max_cache=64 * KiB, samples=2)
        idx = list(res.sizes).index(16 * KiB)
        assert res.gradients[idx] > 3.0

    def test_rejects_zero_samples(self):
        backend = SimulatedBackend(dempsey(), seed=0)
        with pytest.raises(MeasurementError):
            run_mcalibrator(backend, samples=0)

    def test_charges_virtual_time(self):
        backend = SimulatedBackend(dempsey(), seed=0)
        backend.take_virtual_time()
        run_mcalibrator(backend, max_cache=64 * KiB, samples=1)
        assert backend.virtual_time > 0
