"""Unit tests for communication-cost determination (Fig. 7, §III-D)."""

import pytest

from repro.backends import SimulatedBackend
from repro.core.comm_costs import (
    characterize_layers,
    detect_comm_layers,
    layer_scalability,
    run_comm_costs,
)
from repro.errors import MeasurementError
from repro.topology import dunnington, finis_terrae
from repro.units import KiB


@pytest.fixture(scope="module")
def dn_backend():
    return SimulatedBackend(dunnington(), seed=42)


@pytest.fixture(scope="module")
def dn_costs(dn_backend):
    return run_comm_costs(dn_backend, 32 * KiB)


class TestLayerDetection:
    def test_dunnington_three_layers(self, dn_costs):
        assert dn_costs.n_layers == 3
        assert [len(layer.pairs) for layer in dn_costs.layers] == [12, 48, 216]

    def test_layers_sorted_fastest_first(self, dn_costs):
        latencies = [layer.latency for layer in dn_costs.layers]
        assert latencies == sorted(latencies)

    def test_shared_l2_pair_is_in_fastest_layer(self, dn_costs):
        assert (0, 12) in dn_costs.layers[0].pairs
        assert dn_costs.layer_of((0, 12)) == 0
        assert dn_costs.layer_of((0, 1)) == 1
        assert dn_costs.layer_of((0, 3)) == 2

    def test_finis_terrae_two_layers_intra_twice_as_fast(self):
        backend = SimulatedBackend(finis_terrae(2), seed=42)
        costs = detect_comm_layers(backend, 16 * KiB)
        assert costs.n_layers == 2
        ratio = costs.layers[1].latency / costs.layers[0].latency
        assert 1.6 < ratio < 2.4  # "around two times faster"

    def test_pair_latencies_cover_all_pairs(self, dn_costs):
        assert len(dn_costs.pair_latencies) == 24 * 23 // 2

    def test_unknown_pair_raises(self, dn_costs):
        with pytest.raises(MeasurementError):
            dn_costs.layer_of((0, 99))

    def test_needs_two_cores(self, dn_backend):
        with pytest.raises(MeasurementError):
            detect_comm_layers(dn_backend, 32 * KiB, cores=[0])


class TestCharacterization:
    def test_curves_have_requested_sizes(self, dn_costs):
        sizes = [s for s, _, _ in dn_costs.characterization[0]]
        assert sizes[0] == 1 * KiB
        assert len(sizes) == 15

    def test_latency_monotone_in_size(self, dn_costs):
        for curve in dn_costs.characterization:
            latencies = [t for _, t, _ in curve]
            # Noise-tolerant monotonicity: each point must beat the one
            # four steps earlier (16x the size).
            for earlier, later in zip(latencies, latencies[4:]):
                assert later > earlier

    def test_latency_estimate_interpolates(self, dn_costs):
        curve = dn_costs.characterization[0]
        (s0, t0, _), (s1, t1, _) = curve[2], curve[3]
        mid = dn_costs.latency_estimate((0, 12), (s0 + s1) // 2)
        assert min(t0, t1) <= mid <= max(t0, t1)

    def test_latency_estimate_extrapolates_beyond_sweep(self, dn_costs):
        far = dn_costs.latency_estimate((0, 12), 64 * 1024 * 1024)
        s_last, t_last, _ = dn_costs.characterization[0][-1]
        assert far > t_last

    def test_custom_sizes(self, dn_backend):
        costs = detect_comm_layers(dn_backend, 32 * KiB, cores=[0, 1, 12])
        characterize_layers(dn_backend, costs, message_sizes=[1024, 2048])
        assert all(len(c) == 2 for c in costs.characterization)


class TestScalability:
    def test_slowdown_grows_with_concurrency(self, dn_costs):
        for curve in dn_costs.scalability:
            if len(curve) >= 2:
                assert curve[-1][2] > curve[0][2]

    def test_ft_interconnect_7x_at_32_messages(self):
        backend = SimulatedBackend(finis_terrae(2), seed=42)
        costs = run_comm_costs(backend, 16 * KiB)
        inter = costs.layers[1]
        assert inter.pairs[0][1] >= 16  # crosses the node boundary
        curve = costs.scalability[1]
        n_msgs, _, factor = curve[-1]
        assert n_msgs == 32
        assert 5.5 < factor < 8.5

    def test_disjoint_pairs_share_no_core(self, dn_costs):
        for layer in dn_costs.layers:
            cores = [c for p in layer.disjoint_pairs() for c in p]
            assert len(cores) == len(set(cores))

    def test_max_pairs_limits_probe(self, dn_backend):
        costs = detect_comm_layers(dn_backend, 32 * KiB, cores=list(range(8)))
        layer_scalability(dn_backend, costs, max_pairs=1)
        for curve in costs.scalability:
            assert len(curve) <= 1
