"""Unit tests for the prior-work baseline detectors."""

import pytest

from repro.backends import SimulatedBackend
from repro.baselines import xray_cache_sizes
from repro.errors import DetectionError
from repro.memsim.paging import ColoredPaging, ContiguousPaging
from repro.topology import dempsey, dunnington, generic_smp
from repro.units import KiB, MiB


class TestXRayPositional:
    def test_exact_under_contiguous_pages(self):
        backend = SimulatedBackend(dempsey(), paging=ContiguousPaging(), seed=4)
        result = xray_cache_sizes(backend)
        assert result.sizes == [16 * KiB, 2 * MiB]

    def test_exact_under_page_coloring(self):
        machine = dempsey()
        colors = machine.levels[1].spec.page_colors(machine.page_size)
        backend = SimulatedBackend(
            machine, paging=ColoredPaging(n_colors=colors), seed=4
        )
        result = xray_cache_sizes(backend)
        assert result.sizes == [16 * KiB, 2 * MiB]

    def test_wrong_under_random_paging(self):
        backend = SimulatedBackend(dempsey(), seed=4)
        result = xray_cache_sizes(backend)
        # The L1 is virtually indexed and still read correctly...
        assert result.sizes[0] == 16 * KiB
        # ...but the physically indexed L2's positional estimate sits
        # below the true capacity (the smear's steepest point).
        assert result.sizes[1] < 2 * MiB

    def test_level_count_matches_hierarchy_depth(self):
        backend = SimulatedBackend(dunnington(), paging=ContiguousPaging(), seed=4)
        result = xray_cache_sizes(backend)
        assert len(result.sizes) == 3

    def test_flat_curve_raises(self):
        # Probe a range entirely inside the L1: nothing to see.
        machine = generic_smp(n_cores=1, levels=[("2MB", 8, 1, 3.0)])
        backend = SimulatedBackend(machine, seed=4)
        with pytest.raises(DetectionError):
            xray_cache_sizes(backend, max_cache=256 * KiB)

    def test_keeps_raw_curve_for_inspection(self):
        backend = SimulatedBackend(dempsey(), seed=4)
        result = xray_cache_sizes(backend)
        assert len(result.mcalibrator.sizes) > 10
