"""Unit tests for the TLB model and detector (extension)."""

import pytest

from repro.backends import SimulatedBackend
from repro.core.tlb import detect_tlb_entries
from repro.errors import ConfigurationError, DetectionError
from repro.memsim import TLBSpec, TraversalEngine
from repro.memsim.prefetch import NO_PREFETCH
from repro.topology import generic_smp
from repro.units import KiB, MiB


def machine_with_tlb(entries=64, ways=None, walk=40.0):
    return generic_smp(
        n_cores=2,
        levels=[("32KB", 8, 1, 3.0), ("2MB", 8, 1, 18.0)],
        tlb=TLBSpec(entries=entries, ways=ways, walk_cycles=walk),
    )


class TestTLBSpec:
    def test_fully_associative_default(self):
        spec = TLBSpec(entries=64)
        assert spec.effective_ways == 64
        assert spec.num_sets == 1

    def test_set_associative(self):
        spec = TLBSpec(entries=256, ways=4)
        assert spec.num_sets == 64

    def test_rejects_non_dividing_ways(self):
        with pytest.raises(ConfigurationError):
            TLBSpec(entries=48, ways=5)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigurationError):
            TLBSpec(entries=96, ways=8)  # 12 sets

    def test_rejects_negative_walk(self):
        with pytest.raises(ConfigurationError):
            TLBSpec(entries=64, walk_cycles=-1.0)


class TestTraversalWithTLB:
    def test_within_entries_no_walk_cost(self):
        machine = machine_with_tlb(entries=64)
        engine = TraversalEngine(machine, prefetch=NO_PREFETCH)
        # 16KB at 1KB stride touches 4 pages: far below 64 entries.
        assert engine.single(16 * KiB, 1024, rng=0) == pytest.approx(3.0)

    def test_beyond_entries_pays_walks(self):
        machine = machine_with_tlb(entries=16, walk=40.0)
        no_tlb = generic_smp(
            n_cores=2, levels=[("32KB", 8, 1, 3.0), ("2MB", 8, 1, 18.0)]
        )
        with_cost = TraversalEngine(machine, prefetch=NO_PREFETCH).single(
            128 * KiB, 1024, rng=0
        )
        without = TraversalEngine(no_tlb, prefetch=NO_PREFETCH).single(
            128 * KiB, 1024, rng=0
        )
        # 32 pages > 16 entries: every page walks once per revolution;
        # 4 accesses per page -> +40/4 = +10 cycles per access.
        assert with_cost - without == pytest.approx(10.0)

    def test_cliff_is_sharp_at_entry_count(self):
        machine = machine_with_tlb(entries=32, walk=40.0)
        engine = TraversalEngine(machine, prefetch=NO_PREFETCH)
        at = engine.single(32 * 4 * KiB, 1024, rng=0)
        above = engine.single(64 * 4 * KiB, 1024, rng=0)
        assert above - at >= 9.0  # the walk penalty appears


class TestDetector:
    @pytest.mark.parametrize("entries,ways", [(64, None), (256, 4), (2048, None)])
    def test_detects_entry_count(self, entries, ways):
        machine = machine_with_tlb(entries=entries, ways=ways)
        backend = SimulatedBackend(machine, seed=7)
        result = detect_tlb_entries(backend, [32 * KiB, 2 * MiB])
        assert result.entries == entries

    def test_unbounded_tlb_reports_none(self):
        machine = generic_smp(
            n_cores=2, levels=[("32KB", 8, 1, 3.0), ("2MB", 8, 1, 18.0)]
        )
        backend = SimulatedBackend(machine, seed=7)
        result = detect_tlb_entries(backend, [32 * KiB, 2 * MiB])
        assert result.entries is None
        # The L1 line-capacity artifact was seen and discounted.
        assert result.discounted_regions

    def test_ambiguous_tlb_at_cache_capacity_reports_none(self):
        # 512 entries == the 32KB L1's line capacity: genuinely
        # indistinguishable under this probe; must not guess.
        machine = machine_with_tlb(entries=512)
        backend = SimulatedBackend(machine, seed=7)
        result = detect_tlb_entries(backend, [32 * KiB, 2 * MiB])
        assert result.entries is None

    def test_rejects_bad_range(self):
        machine = machine_with_tlb()
        backend = SimulatedBackend(machine, seed=7)
        with pytest.raises(DetectionError):
            detect_tlb_entries(backend, [32 * KiB], min_pages=8, max_pages=4)
