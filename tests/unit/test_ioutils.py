"""Durability behavior of the atomic write helpers."""

from __future__ import annotations

import os

import pytest

from repro.ioutils import atomic_write_text, fsync_dir


def test_atomic_write_replaces_content(tmp_path):
    target = tmp_path / "file.json"
    atomic_write_text(target, "old")
    atomic_write_text(target, "new")
    assert target.read_text() == "new"
    # No stray temp files left behind.
    assert [p.name for p in tmp_path.iterdir()] == ["file.json"]


def test_durable_write_fsyncs_file_and_directory(tmp_path, monkeypatch):
    synced: list[int] = []
    real_fsync = os.fsync

    def recording_fsync(fd):
        synced.append(fd)
        real_fsync(fd)

    monkeypatch.setattr(os, "fsync", recording_fsync)
    atomic_write_text(tmp_path / "file.json", "payload")
    # One fsync for the temp file's data, one for the directory entry
    # (the rename itself) — both are required for power-loss safety.
    assert len(synced) == 2


def test_non_durable_write_skips_fsync(tmp_path, monkeypatch):
    synced: list[int] = []
    monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd))
    atomic_write_text(tmp_path / "file.json", "payload", durable=False)
    assert synced == []
    assert (tmp_path / "file.json").read_text() == "payload"


def test_failed_write_cleans_up_temp_file(tmp_path, monkeypatch):
    def exploding_replace(src, dst):
        raise OSError("disk on fire")

    monkeypatch.setattr(os, "replace", exploding_replace)
    with pytest.raises(OSError, match="disk on fire"):
        atomic_write_text(tmp_path / "file.json", "payload")
    assert list(tmp_path.iterdir()) == []


def test_fsync_dir_tolerates_unsupported_platforms(tmp_path, monkeypatch):
    # Some platforms cannot open directories; the helper must degrade
    # to a no-op instead of failing the surrounding write.
    def no_dir_open(path, flags):
        raise OSError("directories not openable here")

    monkeypatch.setattr(os, "open", no_dir_open)
    fsync_dir(tmp_path)  # must not raise


def test_fsync_dir_syncs_real_directory(tmp_path):
    fsync_dir(tmp_path)  # smoke: real directory, real fsync, no error
