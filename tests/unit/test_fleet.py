"""Unit tests for the fleet layer: protocol, spec, validation, store,
checkpoint, and worker behavior."""

from __future__ import annotations

import json

import pytest

from repro.core.report import ServetReport
from repro.errors import CheckpointError, FleetError, FleetProtocolError
from repro.fleet import (
    COORDINATOR,
    DRAIN,
    HEARTBEAT,
    JOB_DISPATCH,
    JOB_REQUEST,
    MESSAGE_TYPES,
    NO_MORE_JOBS,
    RESULT,
    FleetCheckpoint,
    FleetConfig,
    FleetFaultPlan,
    FleetSpec,
    FleetWorker,
    HardwareClass,
    MachineSpec,
    Message,
    ShardedFleetStore,
    generate_fleet,
    report_problems,
    stable_seed,
)
from repro.obs.metrics import MetricsRegistry
from repro.service.fingerprint import machine_fingerprint


# -- protocol --------------------------------------------------------------


def test_message_roundtrip_every_type():
    payloads = {
        JOB_REQUEST: {},
        JOB_DISPATCH: {"job": {"job_id": "j1", "machine_id": "m0"}},
        NO_MORE_JOBS: {},
        HEARTBEAT: {"job_id": "j1", "phase": "running"},
        RESULT: {"job_id": "j1", "report": {"system": "x"}},
        "FAILURE": {"job_id": "j1", "error": "boom"},
        DRAIN: {"reason": "test"},
    }
    for msg_type in MESSAGE_TYPES:
        msg = Message(
            type=msg_type,
            sender="w3",
            recipient=COORDINATOR,
            seq=7,
            time=12.5,
            payload=payloads[msg_type],
        )
        assert Message.decode(msg.encode()) == msg


def test_message_unknown_type_rejected():
    with pytest.raises(FleetProtocolError, match="unknown message type"):
        Message(type="GOSSIP", sender="w0", recipient=COORDINATOR)


def test_message_missing_required_payload_rejected():
    with pytest.raises(FleetProtocolError, match="missing required payload"):
        Message(type=HEARTBEAT, sender="w0", recipient=COORDINATOR,
                payload={"job_id": "j1"})


def test_message_non_dict_payload_rejected():
    with pytest.raises(FleetProtocolError, match="payload must be a dict"):
        Message(type=JOB_REQUEST, sender="w0", recipient=COORDINATOR,
                payload=["nope"])  # type: ignore[arg-type]


def test_decode_rejects_garbage_and_non_objects():
    with pytest.raises(FleetProtocolError, match="undecodable"):
        Message.decode("{not json")
    with pytest.raises(FleetProtocolError, match="decode to an object"):
        Message.decode("[1, 2]")
    with pytest.raises(FleetProtocolError, match="malformed message"):
        Message.decode(json.dumps({"type": JOB_REQUEST, "sender": "w0"}))


# -- spec ------------------------------------------------------------------


def test_stable_seed_is_process_stable():
    assert stable_seed(1, "m0001") == stable_seed(1, "m0001")
    assert stable_seed(1, "m0001") != stable_seed(2, "m0001")
    assert 0 <= stable_seed("x") < 2**64


def test_generate_fleet_distinct_classes_and_round_robin():
    spec = generate_fleet(20, 5, seed=3)
    classes = spec.classes()
    assert len(classes) == 5
    assert sum(len(members) for members in classes.values()) == 20
    # Round-robin deal: every class gets exactly 20/5 members.
    assert {len(m) for m in classes.values()} == {4}
    # Distinct hardware parameters behind every key.
    keys = {m.hardware.key() for m in spec.machines}
    assert len(keys) == 5


def test_generate_fleet_is_reproducible():
    a = generate_fleet(12, 4, seed=9)
    b = generate_fleet(12, 4, seed=9)
    assert a.to_dict() == b.to_dict()
    assert a.fingerprint() == b.fingerprint()
    assert generate_fleet(12, 4, seed=10).fingerprint() != a.fingerprint()


def test_generate_fleet_validates_shape():
    with pytest.raises(FleetError):
        generate_fleet(0, 1)
    with pytest.raises(FleetError):
        generate_fleet(4, 5)


def test_fleet_spec_rejects_duplicate_ids():
    hw = generate_fleet(2, 1, seed=0).machines[0].hardware
    with pytest.raises(FleetError, match="duplicate machine id"):
        FleetSpec(
            name="dup",
            machines=(
                MachineSpec("m0", hw),
                MachineSpec("m0", hw),
            ),
        )


def test_fleet_spec_roundtrip(tmp_path):
    spec = generate_fleet(6, 3, seed=1, noise=0.0)
    path = tmp_path / "fleet.json"
    spec.save(path)
    loaded = FleetSpec.load(path)
    assert loaded == spec
    assert loaded.fingerprint() == spec.fingerprint()


def test_hardware_class_key_ignores_name():
    spec = generate_fleet(2, 1, seed=4)
    hw = spec.machines[0].hardware
    renamed = HardwareClass.from_dict({**hw.to_dict(), "name": "other"})
    assert renamed.key() == hw.key()


def test_hardware_class_builds_matching_machine():
    hw = generate_fleet(2, 1, seed=8).machines[0].hardware
    machine = hw.build()
    assert machine.n_cores == hw.n_cores
    assert list(machine.cache_sizes) == [size for size, _, _, _ in hw.levels]


# -- validation ------------------------------------------------------------


def _minimal_report(**overrides) -> ServetReport:
    data = {
        "system": "x",
        "n_cores": 2,
        "page_size": 4096,
        "caches": [
            {"level": 1, "size": 32768, "method": "fit", "shared_pairs": [],
             "sharing_groups": [[0], [1]], "ways": 8},
            {"level": 2, "size": 2097152, "method": "fit", "shared_pairs": [[0, 1]],
             "sharing_groups": [[0, 1]], "ways": 8},
        ],
        "memory_reference": 3.0e9,
        "memory_levels": [],
        "comm_probe_size": 32768,
        "comm_layers": [],
    }
    data.update(overrides)
    return ServetReport.from_dict(data)


def test_plausible_report_passes():
    assert report_problems(_minimal_report()) == []


def test_negated_cache_size_flagged():
    report = _minimal_report()
    report.caches[0].size = -32768
    problems = report_problems(report)
    assert any("L1 cache size" in p for p in problems)


def test_non_monotone_cache_sizes_flagged():
    report = _minimal_report()
    report.caches[1].size = 1024
    assert any("not larger" in p for p in report_problems(report))


def test_negative_bandwidth_flagged():
    report = _minimal_report(memory_reference=-1.0)
    assert any("memory reference" in p for p in report_problems(report))


def test_degraded_but_plausible_report_passes():
    # A failed phase leaves its section empty; plausibility judges only
    # what is present, so the report still passes.
    report = _minimal_report(
        caches=[], memory_reference=0.0,
        phase_status={"cache_size": "failed"},
    )
    assert report_problems(report) == []


def test_worker_corruption_is_caught_by_validators():
    report = _minimal_report()
    data = report.to_dict()
    FleetWorker._corrupt(data)
    assert report_problems(ServetReport.from_dict(data))


# -- sharded store ---------------------------------------------------------


def test_store_routes_puts_and_reads_back(tmp_path):
    store = ShardedFleetStore(tmp_path / "store", shards=4)
    spec = generate_fleet(2, 2, seed=2)
    for machine in spec.machines:
        fp = machine_fingerprint(machine.hardware.build(), options=spec.options)
        store.put(fp, _minimal_report(system=machine.hardware.name))
        assert store.get(fp.digest).system == machine.hardware.name
        shard_dir = tmp_path / "store" / f"shard-{store.shard_of(fp.digest):02d}"
        assert (shard_dir / fp.digest).is_dir()
    assert len(store.entries()) == 2
    assert store.quarantined_counts() == {}


def test_store_refuses_shard_count_change(tmp_path):
    root = tmp_path / "store"
    store = ShardedFleetStore(root, shards=4)
    spec = generate_fleet(1, 1, seed=2)
    fp = machine_fingerprint(spec.machines[0].hardware.build(),
                             options=spec.options)
    store.put(fp, _minimal_report())
    with pytest.raises(FleetError, match="mis-route"):
        ShardedFleetStore(root, shards=8)
    # Same count reopens fine.
    assert ShardedFleetStore(root, shards=4).get(fp.digest).system == "x"


def test_store_rejects_bad_shard_counts(tmp_path):
    with pytest.raises(FleetError):
        ShardedFleetStore(tmp_path, shards=0)
    with pytest.raises(FleetError):
        ShardedFleetStore(tmp_path, shards=1000)


# -- checkpoint ------------------------------------------------------------


def test_checkpoint_records_only_terminal_classes():
    checkpoint = FleetCheckpoint(fleet_fingerprint="f" * 64, fleet_name="x")
    with pytest.raises(CheckpointError, match="terminal"):
        checkpoint.record_class("k", {"status": "running"})
    checkpoint.record_class("k", {"status": "measured"})
    assert "k" in checkpoint.classes


def test_checkpoint_roundtrip_and_fleet_mismatch(tmp_path):
    checkpoint = FleetCheckpoint(fleet_fingerprint="a" * 64, fleet_name="x")
    checkpoint.record_class("k", {"status": "failed", "errors": ["boom"]})
    path = tmp_path / "cp.json"
    checkpoint.save(path)
    loaded = FleetCheckpoint.load(path)
    assert loaded.classes == checkpoint.classes
    loaded.matches("a" * 64)
    with pytest.raises(CheckpointError, match="refusing to mix"):
        loaded.matches("b" * 64)


def test_checkpoint_rejects_unknown_version(tmp_path):
    path = tmp_path / "cp.json"
    path.write_text(json.dumps({
        "version": 99, "fleet_fingerprint": "a", "fleet_name": "x",
        "classes": {},
    }))
    with pytest.raises(CheckpointError, match="version"):
        FleetCheckpoint.load(path)


# -- worker ----------------------------------------------------------------


def _dispatch_for(spec: FleetSpec, machine_id: str, recipient: str = "w0") -> Message:
    machine = spec.machine(machine_id)
    return Message(
        type=JOB_DISPATCH,
        sender=COORDINATOR,
        recipient=recipient,
        payload={"job": {
            "job_id": "j1",
            "machine_id": machine_id,
            "class_key": machine.hardware.key(),
            "class": machine.hardware.to_dict(),
            "seed": stable_seed(spec.seed, machine_id),
            "noise": spec.noise,
            "options": spec.options,
            "expected_seconds": 600.0,
            "heartbeat_seconds": 30.0,
            "attempt": 0,
            "speculative": False,
        }},
    )


def test_worker_runs_job_and_reports(small_fleet):
    worker = FleetWorker("w0")
    out = worker.on_message(_dispatch_for(small_fleet, "m0000"), now=0.0)
    types = [msg.type for _, msg in out]
    assert types.count(RESULT) == 1
    assert types[-1] == JOB_REQUEST
    assert all(t in (HEARTBEAT, RESULT, JOB_REQUEST) for t in types)
    result = next(msg for _, msg in out if msg.type == RESULT)
    report = ServetReport.from_dict(result.payload["report"])
    assert report_problems(report) == []
    # Emission times are ordered and the RESULT lands after the start.
    times = [t for t, _ in out]
    assert times == sorted(times)
    assert times[-1] > 0.0


def test_worker_result_is_deterministic_across_retries(small_fleet):
    first = FleetWorker("w0").on_message(
        _dispatch_for(small_fleet, "m0000"), now=0.0
    )
    second = FleetWorker("w1").on_message(
        _dispatch_for(small_fleet, "m0000", recipient="w1"), now=50.0
    )
    r1 = next(m for _, m in first if m.type == RESULT).payload["report"]
    r2 = next(m for _, m in second if m.type == RESULT).payload["report"]
    # Wall-clock timings differ; the measurement content must not.
    m1 = ServetReport.from_dict(r1).measurement_dict()
    m2 = ServetReport.from_dict(r2).measurement_dict()
    assert json.dumps(m1, sort_keys=True) == json.dumps(m2, sort_keys=True)


def test_crashed_worker_emits_no_result_and_respawns(small_fleet):
    plan = FleetFaultPlan(seed=0, crash_rate=1.0, respawn_seconds=100.0)
    worker = FleetWorker("w0", fault_plan=plan)
    out = worker.on_message(_dispatch_for(small_fleet, "m0000"), now=0.0)
    types = [msg.type for _, msg in out]
    assert RESULT not in types
    assert types[-1] == JOB_REQUEST  # the respawn announcement
    respawn_at = out[-1][0]
    heartbeat_times = [t for t, msg in out if msg.type == HEARTBEAT]
    assert all(t < respawn_at - plan.respawn_seconds + 1e-9
               for t in heartbeat_times)
    assert worker.crashes == 1


def test_flaky_machine_returns_corrupt_but_cache_stays_clean(small_fleet):
    plan = FleetFaultPlan(seed=0, flaky_machines=("m0000",))
    cache: dict = {}
    worker = FleetWorker("w0", fault_plan=plan, suite_cache=cache)
    out = worker.on_message(_dispatch_for(small_fleet, "m0000"), now=0.0)
    result = next(msg for _, msg in out if msg.type == RESULT)
    assert report_problems(ServetReport.from_dict(result.payload["report"]))
    # The memoized clean measurement must not have been corrupted.
    cached_report, _, _ = cache["m0000"]
    assert report_problems(ServetReport.from_dict(cached_report)) == []


def test_worker_rejects_misaddressed_and_untyped_frames():
    worker = FleetWorker("w0")
    with pytest.raises(FleetProtocolError, match="addressed to"):
        worker.on_message(
            Message(type=NO_MORE_JOBS, sender=COORDINATOR, recipient="w1"),
            now=0.0,
        )
    with pytest.raises(FleetProtocolError, match="cannot handle"):
        worker.on_message(
            Message(type=JOB_REQUEST, sender=COORDINATOR, recipient="w0"),
            now=0.0,
        )


def test_drain_frame_marks_worker_draining():
    worker = FleetWorker("w0")
    assert worker.on_message(
        Message(type=DRAIN, sender=COORDINATOR, recipient="w0",
                payload={"reason": "test"}),
        now=0.0,
    ) == []
    assert worker.draining


# -- fault plan / config validation ---------------------------------------


def test_fault_plan_roundtrip_and_validation(tmp_path):
    plan = FleetFaultPlan(seed=1, crash_rate=0.25, straggler_rate=0.1,
                          flaky_machines=("m2", "m1", "m1"))
    assert plan.flaky_machines == ("m1", "m2")
    path = tmp_path / "plan.json"
    plan.save(path)
    assert FleetFaultPlan.load(path) == plan
    with pytest.raises(FleetError):
        FleetFaultPlan(crash_rate=1.5)
    with pytest.raises(FleetError):
        FleetFaultPlan(straggle_factor=1.0)
    with pytest.raises(FleetError):
        FleetFaultPlan(respawn_seconds=0.0)


def test_fleet_config_validation():
    with pytest.raises(FleetError, match="exceed heartbeat"):
        FleetConfig(lease_seconds=10.0, heartbeat_seconds=30.0)
    with pytest.raises(FleetError):
        FleetConfig(workers=0)
    with pytest.raises(FleetError):
        FleetConfig(max_attempts=0)
    with pytest.raises(FleetError):
        FleetConfig(speculate_factor=1.0)


@pytest.fixture(scope="module")
def small_fleet() -> FleetSpec:
    return generate_fleet(4, 2, seed=13, name="unit")


def test_metrics_shared_across_store_shards(tmp_path):
    metrics = MetricsRegistry()
    store = ShardedFleetStore(tmp_path / "s", shards=2, metrics=metrics)
    spec = generate_fleet(1, 1, seed=2)
    fp = machine_fingerprint(spec.machines[0].hardware.build(),
                             options=spec.options)
    store.put(fp, _minimal_report())
    assert metrics.value("counter", "fleet.store_puts") == 1
