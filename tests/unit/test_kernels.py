"""Unit tests for the native measurement kernels."""

import numpy as np
import pytest

from repro.backends.kernels import build_chase_array, gather_traverse, pointer_chase
from repro.errors import MeasurementError


class TestBuildChaseArray:
    def test_visited_slots_hold_the_stride(self):
        arr = build_chase_array(8 * 1024, 1024)
        hop = 1024 // 8
        assert arr[0] == hop
        assert arr[hop] == hop
        assert arr[1] == 0  # unvisited slots stay zero

    def test_walk_covers_expected_slots(self):
        arr = build_chase_array(4 * 1024, 512)
        visited = []
        j = 0
        while j < len(arr):
            visited.append(j)
            j += int(arr[j])
        assert visited == list(range(0, 512, 64))

    def test_rejects_unaligned_stride(self):
        with pytest.raises(MeasurementError):
            build_chase_array(4096, 100)


class TestPointerChase:
    def test_returns_positive_seconds_per_access(self):
        arr = build_chase_array(16 * 1024, 1024)
        secs = pointer_chase(arr, repeats=2)
        assert 0 < secs < 1.0

    def test_rejects_zero_repeats(self):
        arr = build_chase_array(4096, 512)
        with pytest.raises(MeasurementError):
            pointer_chase(arr, repeats=0)


class TestGatherTraverse:
    def test_returns_positive_seconds_per_access(self):
        arr = np.zeros(4096, dtype=np.int64)
        idx = np.arange(0, 4096, 128)
        secs = gather_traverse(arr, idx, repeats=2)
        assert 0 < secs < 1.0

    def test_gather_is_much_faster_than_chase(self):
        nbytes = 256 * 1024
        chase_arr = build_chase_array(nbytes, 1024)
        chase = pointer_chase(chase_arr, repeats=2)
        arr = np.zeros(nbytes // 8, dtype=np.int64)
        idx = np.arange(0, nbytes // 8, 128)
        gather = gather_traverse(arr, idx, repeats=2)
        assert gather < chase  # interpreter overhead: the repro-band caveat


class TestNativeKernelSelection:
    def test_chase_kernel_usable(self):
        from repro.backends import NativeBackend

        backend = NativeBackend(repeats=1, kernel="chase")
        out = backend.traversal_cycles([(0, 32 * 1024)], 1024)
        assert out[0] > 0

    def test_unknown_kernel_rejected(self):
        from repro.backends import NativeBackend

        with pytest.raises(MeasurementError):
            NativeBackend(kernel="quantum")


def test_cli_validate(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "r.json"
    main(["run", "--machine", "athlon_3200", "-o", str(path)])
    capsys.readouterr()
    assert main(["validate", str(path), "--machine", "athlon_3200"]) == 0
    assert "validation OK" in capsys.readouterr().out
    assert main(["validate", str(path), "--machine", "dempsey"]) == 1
    assert "VALIDATION FAILED" in capsys.readouterr().out
