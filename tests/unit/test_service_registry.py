"""Unit tests for the versioned report registry.

Covers the schema-roundtrip guarantees: a v1 (pre-envelope) report
loads through the migration hook with an identical
``measurement_dict()``, and a corrupted-checksum file is quarantined —
never crashed on — with fallback to the newest intact version.
"""

import json

import pytest

from repro import ServetSuite, SimulatedBackend, dempsey
from repro.errors import RegistryError
from repro.service.fingerprint import REPORT_SCHEMA_VERSION, fingerprint_of
from repro.service.registry import ReportRegistry, _migrate, report_checksum


@pytest.fixture(scope="module")
def small_report():
    backend = SimulatedBackend(dempsey(), seed=3, noise=0.0)
    report = ServetSuite(backend).run()
    return report, fingerprint_of(backend)


@pytest.fixture
def registry(tmp_path):
    return ReportRegistry(tmp_path / "registry", clock=lambda: 1700000000.0)


def test_put_get_roundtrip(registry, small_report):
    report, fp = small_report
    entry = registry.put(fp, report)
    assert entry.version == 1
    assert entry.schema_version == REPORT_SCHEMA_VERSION
    assert entry.system == "dempsey"
    loaded = registry.get(fp.digest)
    assert loaded.measurement_dict() == report.measurement_dict()


def test_versions_accumulate_and_pin(registry, small_report):
    report, fp = small_report
    registry.put(fp, report)
    second = registry.put(fp, report)
    assert second.version == 2
    assert [e.version for e in registry.entries(fp.digest)] == [1, 2]
    assert registry.get_entry(fp.digest).version == 2
    assert registry.get_entry(fp.digest, version=1).version == 1
    with pytest.raises(RegistryError, match="no version 9"):
        registry.get(fp.digest, version=9)


def test_resolve_latest_prefix_ambiguous(registry, small_report):
    report, fp = small_report
    with pytest.raises(RegistryError, match="is empty"):
        registry.resolve("latest")
    registry.put(fp, report)
    assert registry.resolve("latest") == fp.digest
    assert registry.resolve(fp.digest[:8]) == fp.digest
    with pytest.raises(RegistryError, match="no report for fingerprint"):
        registry.resolve("zzzz")
    # A second digest sharing no prefix still resolves; an empty prefix
    # matching both is ambiguous.
    other_dir = registry.root / ("0" * 64)
    other_dir.mkdir(parents=True)
    with pytest.raises(RegistryError, match="ambiguous"):
        registry.resolve("")


def test_v1_loose_file_imports_identically(registry, small_report, tmp_path):
    """Satellite: schema v1 (bare ``ServetReport.save`` output) migrates."""
    report, fp = small_report
    loose = tmp_path / "report.json"
    report.save(loose)
    entry = registry.import_report(loose, fp)
    assert entry.schema_version == REPORT_SCHEMA_VERSION
    assert registry.get(fp.digest).measurement_dict() == report.measurement_dict()


def test_hand_placed_v1_file_loads_through_migration(registry, small_report):
    """A bare payload dropped straight into the digest dir still reads."""
    report, fp = small_report
    digest_dir = registry.root / fp.digest
    digest_dir.mkdir(parents=True)
    (digest_dir / "v000001.json").write_text(json.dumps(report.to_dict()))
    loaded = registry.get(fp.digest)
    assert loaded.measurement_dict() == report.measurement_dict()


def test_corrupted_checksum_quarantined_with_fallback(registry, small_report):
    report, fp = small_report
    registry.put(fp, report)
    bad_entry = registry.put(fp, report)
    envelope = json.loads(bad_entry.path.read_text())
    envelope["report"]["n_cores"] = 999  # tamper without fixing the checksum
    bad_entry.path.write_text(json.dumps(envelope))

    loaded = registry.get(fp.digest)
    assert loaded.n_cores == report.n_cores  # fell back to intact v1
    assert not bad_entry.path.exists()
    assert bad_entry.path.with_name(bad_entry.path.name + ".quarantined").exists()


def test_unparseable_file_quarantined(registry, small_report):
    report, fp = small_report
    registry.put(fp, report)
    entry = registry.put(fp, report)
    entry.path.write_text("{not json")
    assert registry.get(fp.digest).measurement_dict() == report.measurement_dict()
    assert entry.path.with_name(entry.path.name + ".quarantined").exists()


def test_all_versions_corrupt_raises_listing_quarantined(registry, small_report):
    report, fp = small_report
    entry = registry.put(fp, report)
    entry.path.write_text("garbage")
    with pytest.raises(RegistryError, match="quarantined"):
        registry.get(fp.digest)


def test_future_schema_version_quarantined_not_crashed(registry, small_report):
    report, fp = small_report
    registry.put(fp, report)
    entry = registry.put(fp, report)
    envelope = json.loads(entry.path.read_text())
    envelope["schema_version"] = REPORT_SCHEMA_VERSION + 5
    entry.path.write_text(json.dumps(envelope))
    assert registry.get(fp.digest).measurement_dict() == report.measurement_dict()


def test_migrate_rejects_unknown_gap():
    with pytest.raises(RegistryError, match="no migration"):
        _migrate({"schema_version": 0, "report": {}}, origin="test")


def test_gc_keeps_newest_and_sweeps_quarantine(registry, small_report):
    report, fp = small_report
    for _ in range(3):
        registry.put(fp, report)
    middle = registry.get_entry(fp.digest, version=2)
    middle.path.write_text("garbage")
    registry.get(fp.digest)  # quarantines v2
    removed = registry.gc(keep=1)
    assert len(removed) == 2  # v1 + the quarantined v2
    survivors = registry.entries(fp.digest)
    assert [e.version for e in survivors] == [3]
    with pytest.raises(RegistryError, match="needs keep"):
        registry.gc(keep=0)


def test_latest_version_is_a_stat_probe(registry, small_report, monkeypatch):
    """Satellite: the watcher's version probe never reads payloads."""
    report, fp = small_report
    assert registry.latest_version(fp.digest) == 0  # nothing stored yet
    registry.put(fp, report)
    registry.put(fp, report)
    assert registry.latest_version(fp.digest) == 2
    assert registry.latest_version(fp.digest[:10]) == 2

    # Prove no file payload is opened: corrupt every stored version;
    # the name-based probe must still answer (get() would quarantine).
    for entry in registry.entries(fp.digest):
        entry.path.write_text("garbage")
    assert registry.latest_version(fp.digest) == 2


def test_latest_version_rejects_latest_spec(registry):
    with pytest.raises(RegistryError, match="needs a digest"):
        registry.latest_version("latest")


def test_latest_version_ambiguous_prefix(registry, small_report):
    report, fp = small_report
    registry.put(fp, report)
    other = registry.root / ("0" * 64)
    other.mkdir(parents=True)
    with pytest.raises(RegistryError, match="ambiguous"):
        registry.latest_version("")


def test_latest_version_unknown_digest_is_zero(registry):
    assert registry.latest_version("f" * 64) == 0


def test_refresh_refuses_empty_digest_dir(registry, small_report, tmp_path):
    """incremental_refresh probes latest_version before any payload
    work: a digest directory holding only metadata fails with a clear
    message instead of a deep registry error."""
    from repro import SimulatedBackend, dempsey
    from repro.errors import ServiceError
    from repro.service.staleness import incremental_refresh

    report, fp = small_report
    registry.put(fp, report)
    entry = registry.get_entry(fp.digest)
    entry.path.unlink()  # meta.json survives, versions are gone
    backend = SimulatedBackend(dempsey(), seed=3, noise=0.0)
    with pytest.raises(ServiceError, match="no stored versions"):
        incremental_refresh(registry, backend, base=fp.digest)


def test_checksum_is_canonical():
    assert report_checksum({"b": 1, "a": 2}) == report_checksum({"a": 2, "b": 1})


def test_fingerprint_inputs_roundtrip(registry, small_report):
    report, fp = small_report
    registry.put(fp, report)
    assert registry.fingerprint_inputs(fp.digest[:10]) == fp.inputs


def test_quarantine_increments_metrics_counter(small_report, tmp_path):
    from repro.obs.metrics import MetricsRegistry

    metrics = MetricsRegistry()
    registry = ReportRegistry(
        tmp_path / "metered", clock=lambda: 1700000000.0, metrics=metrics
    )
    report, fp = small_report
    registry.put(fp, report)
    entry = registry.put(fp, report)
    entry.path.write_text("{not json")
    registry.get(fp.digest)  # quarantines the corrupt v2

    digest12 = fp.digest[:12]
    assert (
        metrics.value(
            "counter", "registry.quarantine_events", digest=digest12
        )
        == 1
    )


def test_quarantined_counts_reflect_disk_state(registry, small_report):
    report, fp = small_report
    assert registry.quarantined_counts() == {}
    registry.put(fp, report)
    for entry in (registry.put(fp, report), registry.put(fp, report)):
        entry.path.write_text("garbage")
    registry.get(fp.digest)  # walks v3, v2 (both quarantined) down to v1
    counts = registry.quarantined_counts()
    assert counts == {fp.digest: 2}
