"""Smoke tests for the best-effort native backend.

The calibration note (repro band 2) says native accuracy is not
expected — these tests only pin the *interface contract*: measurements
complete, return positive values of the right shape, and account
virtual time.  Kept fast via tiny sizes.
"""

import pytest

from repro.backends import NativeBackend
from repro.errors import MeasurementError
from repro.units import KiB


@pytest.fixture(scope="module")
def backend():
    return NativeBackend(repeats=2)


class TestNativeTraversal:
    def test_single_core(self, backend):
        out = backend.traversal_cycles([(0, 64 * KiB)], 1024)
        assert set(out) == {0}
        assert out[0] > 0

    def test_concurrent_cores(self, backend):
        cores = [0, min(1, backend.n_cores - 1)]
        if cores[0] == cores[1]:
            pytest.skip("single-core host")
        out = backend.traversal_cycles(
            [(cores[0], 64 * KiB), (cores[1], 64 * KiB)], 1024
        )
        assert set(out) == set(cores)

    def test_rejects_unaligned_stride(self, backend):
        with pytest.raises(MeasurementError):
            backend.traversal_cycles([(0, 64 * KiB)], 1001)

    def test_charges_virtual_time(self, backend):
        backend.take_virtual_time()
        backend.traversal_cycles([(0, 32 * KiB)], 1024)
        assert backend.take_virtual_time() > 0


class TestNativeBandwidth:
    def test_single_core_positive(self, backend):
        out = backend.copy_bandwidth([0])
        assert out[0] > 1e6  # anything slower than 1MB/s is a bug


class TestNativeMessages:
    def test_pingpong_latency_positive(self, backend):
        peer = min(1, backend.n_cores - 1)
        latency = backend.message_latency(0, peer, 4 * KiB)
        assert 0 < latency < 1.0  # sane bounds for an IPC ping-pong

    def test_concurrent_latency_fields(self, backend):
        peer = min(1, backend.n_cores - 1)
        result = backend.concurrent_message_latency([(0, peer)], 1 * KiB)
        assert result.worst >= result.mean > 0


def test_metadata():
    backend = NativeBackend()
    assert backend.n_cores >= 1
    assert backend.page_size >= 512
    assert backend.name.startswith("native")
