"""Unit tests for the staleness -> phase mapping and refresh modes."""

import pytest

from repro import ServetSuite, SimulatedBackend, dempsey
from repro.service.fingerprint import fingerprint_of
from repro.service.registry import ReportRegistry
from repro.service.staleness import (
    ALL_PHASES,
    _SECTION_CLEARERS,
    StalenessReport,
    affected_phases,
    assess_staleness,
    incremental_refresh,
)


# -- the rule table ------------------------------------------------------


def test_bandwidth_change_hits_only_memory_overhead():
    assert affected_phases(["topology.node.bandwidth.capacity"]) == (
        "memory_overhead",
    )


def test_cache_levels_change_closes_over_dependents():
    # A new hierarchy invalidates everything that consumed the detected
    # levels: sharing detection, the TLB probe, and the L1-sized
    # communication probe.
    assert affected_phases(["topology.node.levels[0].size"]) == (
        "cache_size",
        "shared_caches",
        "tlb_detection",
        "communication_costs",
    )


def test_tlb_change_includes_cache_size_closure():
    affected = affected_phases(["topology.node.tlb.entries"])
    assert "cache_size" in affected and "tlb_detection" in affected
    assert "memory_overhead" not in affected


def test_comm_model_change_hits_communication_only():
    assert affected_phases(["comm.intra_cell.base_latency"]) == (
        "communication_costs",
    )


def test_option_rules():
    assert affected_phases(["options.probe_tlb"]) == ("tlb_detection",)
    assert affected_phases(["options.comm_cores"]) == ("communication_costs",)
    # node_cores re-measures the single-node phases; the dependency
    # closure over cache_size then pulls in the L1-sized comm probe too.
    assert affected_phases(["options.node_cores"]) == ALL_PHASES


def test_prune_change_invalidates_nothing():
    assert affected_phases(["options.prune"]) == ()


def test_unknown_path_distrusts_everything():
    assert affected_phases(["topology.quantum_link"]) == ALL_PHASES
    # ... even when mixed with precisely-understood changes.
    assert affected_phases(
        ["topology.node.bandwidth.capacity", "mystery"]
    ) == ALL_PHASES


def test_prefix_match_does_not_overreach():
    # "topology.node.cells" must not swallow "topology.node.cells_ext"-
    # style siblings; an unmatched sibling falls through to ALL.
    assert affected_phases(["topology.node.cells[0][1]"]) == (
        "memory_overhead",
        "communication_costs",
    )
    assert affected_phases(["topology.node.cellsize"]) == ALL_PHASES


def test_no_change_is_fresh():
    report = StalenessReport(changed=(), affected=())
    assert report.fresh and not report.full
    assert "unchanged" in report.summary()


def test_assess_staleness_end_to_end():
    stored = {"topology": {"node": {"mem_latency": 80.0}}, "options": {}}
    live = {"topology": {"node": {"mem_latency": 95.0}}, "options": {}}
    report = assess_staleness(stored, live)
    assert report.changed == ("topology.node.mem_latency",)
    assert report.affected[0] == "cache_size"
    assert "re-measure" in report.summary()


# -- section clearers ----------------------------------------------------


def test_every_phase_has_a_clearer():
    assert set(_SECTION_CLEARERS) == set(ALL_PHASES)


def test_clearers_erase_their_sections(dunnington_report):
    data = dunnington_report.to_dict()
    _SECTION_CLEARERS["tlb_detection"](data)
    assert data["tlb_entries"] is None
    _SECTION_CLEARERS["shared_caches"](data)
    assert all(
        c["shared_pairs"] == [] and c["sharing_groups"] == [] for c in data["caches"]
    )
    _SECTION_CLEARERS["memory_overhead"](data)
    assert data["memory_reference"] == 0.0 and data["memory_levels"] == []
    _SECTION_CLEARERS["communication_costs"](data)
    assert data["comm_probe_size"] == 0 and data["comm_layers"] == []
    _SECTION_CLEARERS["cache_size"](data)
    assert data["caches"] == []


# -- refresh modes (cheap paths; the incremental path is integration) ----


@pytest.fixture(scope="module")
def seeded_registry(tmp_path_factory):
    backend = SimulatedBackend(dempsey(), seed=3, noise=0.0)
    report = ServetSuite(backend).run()
    registry = ReportRegistry(tmp_path_factory.mktemp("reg") / "registry")
    registry.put(fingerprint_of(backend), report)
    return registry, report


def test_refresh_up_to_date(seeded_registry):
    registry, report = seeded_registry
    backend = SimulatedBackend(dempsey(), seed=99, noise=0.5)  # same model
    result = incremental_refresh(registry, backend)
    assert result.mode == "up_to_date"
    assert result.entry is None
    assert result.staleness.fresh
    assert result.report.measurement_dict() == report.measurement_dict()


def test_refresh_rekey_on_prune_change(seeded_registry):
    registry, report = seeded_registry
    backend = SimulatedBackend(dempsey(), seed=3, noise=0.0)
    result = incremental_refresh(registry, backend, options={"prune": "cells"})
    assert result.staleness.changed == ("options.prune",)
    assert result.mode == "rekey"
    # Re-keyed verbatim: no measurement changed, new digest stored.
    assert result.report.measurement_dict() == report.measurement_dict()
    assert result.entry is not None
    assert registry.get(result.fingerprint.digest).measurement_dict() == (
        report.measurement_dict()
    )
