"""Unit tests for the machine zoo: families, simulation support, recovery."""

import pytest

from repro.backends import SimulatedBackend
from repro.errors import ConfigurationError
from repro.memsim.cache import (
    MultiLevelSimulator,
    TraceAccess,
    interleave_round_robin,
)
from repro.memsim.traversal import Traversal, TraversalEngine
from repro.topology import CacheOrganization, CoreClass
from repro.topology.cache import CacheLevel, CacheSpec, Indexing, private_groups
from repro.topology.machine import BandwidthDomain, Machine
from repro.units import KiB, MiB
from repro.zoo import (
    MATCH,
    UNDETECTABLE,
    WRONG,
    family_builder,
    family_names,
    generate_machine,
    generate_zoo,
    recover_machine,
    score_report,
)


# -- generator basics -----------------------------------------------------


def test_family_names_cover_the_announced_families():
    names = family_names()
    assert len(names) == 8
    for expected in (
        "exclusive_l2",
        "victim_cache",
        "sectored",
        "odd_assoc",
        "snc",
        "big_little",
        "multi_nic",
        "fat_tree",
    ):
        assert expected in names


def test_unknown_family_is_a_clear_error():
    with pytest.raises(ConfigurationError, match="no_such_family"):
        family_builder("no_such_family")


def test_generate_zoo_orders_by_family_then_seed():
    machines = generate_zoo(families=["snc", "fat_tree"], seeds=2)
    coords = [(m.family, m.seed) for m in machines]
    assert coords == [("snc", 0), ("snc", 1), ("fat_tree", 0), ("fat_tree", 1)]


@pytest.mark.parametrize("family", family_names())
def test_ground_truth_is_complete(family):
    gm = generate_machine(family, 0)
    names = {p.parameter for p in gm.truth.params}
    assert "cache.levels" in names
    assert "memory.levels" in names
    assert "comm.layers" in names
    assert "tlb.entries" in names
    n_levels = gm.truth.param("cache.levels").true_value
    for i in range(1, n_levels + 1):
        assert f"cache.L{i}.size" in names
        assert f"cache.L{i}.sharing" in names
        assert f"cache.L{i}.ways" in names


# -- simulation substrate behaviors the families rely on ------------------


def _machine_with_l2(spec2: CacheSpec, n: int = 1, **kwargs) -> Machine:
    levels = (
        CacheLevel(
            CacheSpec(1, 32 * KiB, ways=8, indexing=Indexing.VIRTUAL, latency=3.0),
            private_groups(n),
        ),
        CacheLevel(spec2, private_groups(n)),
    )
    cores = frozenset(range(n))
    return Machine(
        name="t",
        n_cores=n,
        levels=levels,
        processors=(cores,),
        cells=(cores,),
        page_size=4 * KiB,
        mem_latency=250.0,
        clock_hz=2e9,
        core_stream_bw=3e9,
        bandwidth_root=BandwidthDomain("root", capacity=4 * 3e9, cores=cores),
        **kwargs,
    )


def test_exclusive_l2_observes_combined_capacity():
    # 32 KB L1 + 480 KB 15-way exclusive L2: a cyclic traversal of
    # exactly 512 KB (the sum) must still hit; 1 MB must miss.
    spec2 = CacheSpec(
        2,
        480 * KiB,
        ways=15,
        indexing=Indexing.VIRTUAL,
        latency=14.0,
        organization=CacheOrganization.EXCLUSIVE,
    )
    machine = _machine_with_l2(spec2)
    engine = TraversalEngine(machine)
    fits = engine.run([Traversal(0, 512 * KiB, 1024)], rng=0).cycles_per_access[0]
    misses = engine.run([Traversal(0, 1 * MiB, 1024)], rng=0).cycles_per_access[0]
    assert fits < 3.0 + 14.0 + 1.0
    assert misses > 250.0


def test_exclusive_analytic_agrees_with_explicit_simulation():
    spec2 = CacheSpec(
        2,
        480 * KiB,
        ways=15,
        indexing=Indexing.VIRTUAL,
        latency=14.0,
        organization=CacheOrganization.EXCLUSIVE,
    )
    machine = _machine_with_l2(spec2)
    engine = TraversalEngine(machine)
    sim = MultiLevelSimulator(machine)
    for array_bytes in (256 * KiB, 512 * KiB, 768 * KiB):
        stride = 1024
        n = array_bytes // stride
        trace = [
            TraceAccess(core=0, vline=i * (stride // 64), pline=i * (stride // 64))
            for i in range(n)
        ]
        outcome = sim.run(trace, rounds=4, measure_last_round_only=True)
        analytic = engine.run(
            [Traversal(0, array_bytes, stride)], rng=0
        ).cycles_per_access[0]
        assert outcome.cycles_per_access[0] == pytest.approx(analytic, rel=0.05)


def test_victim_buffer_is_invisible_to_strided_probes():
    # A 16-entry victim level must not move the apparent L1 cliff.
    victim = CacheSpec(
        2,
        16 * 64,
        ways=16,
        indexing=Indexing.VIRTUAL,
        latency=2.0,
        organization=CacheOrganization.VICTIM,
    )
    levels = (
        CacheLevel(
            CacheSpec(1, 32 * KiB, ways=8, indexing=Indexing.VIRTUAL, latency=3.0),
            private_groups(1),
        ),
        CacheLevel(victim, private_groups(1)),
        CacheLevel(
            CacheSpec(3, 2 * MiB, ways=8, indexing=Indexing.VIRTUAL, latency=16.0),
            private_groups(1),
        ),
    )
    cores = frozenset([0])
    machine = Machine(
        name="v",
        n_cores=1,
        levels=levels,
        processors=(cores,),
        cells=(cores,),
        page_size=4 * KiB,
        mem_latency=250.0,
        clock_hz=2e9,
        core_stream_bw=3e9,
        bandwidth_root=BandwidthDomain("root", capacity=4 * 3e9, cores=cores),
    )
    engine = TraversalEngine(machine)
    at_l1 = engine.run([Traversal(0, 32 * KiB, 1024)], rng=0).cycles_per_access[0]
    past_l1 = engine.run([Traversal(0, 64 * KiB, 1024)], rng=0).cycles_per_access[0]
    # Still hits L1 at exactly 32 KB; past it the victim (16 lines vs a
    # 64-line working set) catches nothing and L3 serves the misses.
    assert at_l1 == pytest.approx(3.0)
    assert past_l1 > 3.0 + 2.0 + 10.0


def test_victim_spec_requires_full_associativity():
    with pytest.raises(ConfigurationError, match="victim"):
        CacheSpec(
            2,
            64 * KiB,
            ways=8,
            organization=CacheOrganization.VICTIM,
        )


def test_sectored_capacity_reads_true_under_coarse_stride():
    # sector_lines=4: one tag per 256 B.  With a 1 KiB stride each
    # access claims a fresh sector, so the apparent capacity equals the
    # real size.
    spec2 = CacheSpec(
        2,
        1 * MiB,
        ways=8,
        indexing=Indexing.VIRTUAL,
        latency=14.0,
        sector_lines=4,
    )
    assert spec2.num_sets == 512
    assert spec2.sector_bytes == 256
    machine = _machine_with_l2(spec2)
    engine = TraversalEngine(machine)
    fits = engine.run([Traversal(0, 1 * MiB, 1024)], rng=0).cycles_per_access[0]
    misses = engine.run([Traversal(0, 2 * MiB, 1024)], rng=0).cycles_per_access[0]
    assert fits < 3.0 + 14.0 + 1.0
    assert misses > 250.0


def test_core_classes_scale_cycles_per_class():
    spec2 = CacheSpec(2, 1 * MiB, ways=8, indexing=Indexing.VIRTUAL, latency=14.0)
    machine = _machine_with_l2(
        spec2,
        n=2,
        core_classes=(
            CoreClass("big", frozenset([0]), cycle_scale=1.0),
            CoreClass("little", frozenset([1]), cycle_scale=1.5),
        ),
    )
    engine = TraversalEngine(machine)
    result = engine.run(
        [Traversal(0, 16 * KiB, 1024), Traversal(1, 16 * KiB, 1024)], rng=0
    )
    cycles = result.cycles_per_access
    assert cycles[1] == pytest.approx(1.5 * cycles[0])


def test_core_classes_must_partition_cores():
    spec2 = CacheSpec(2, 1 * MiB, ways=8, indexing=Indexing.VIRTUAL, latency=14.0)
    with pytest.raises(ConfigurationError, match="partition"):
        _machine_with_l2(
            spec2,
            n=2,
            core_classes=(CoreClass("big", frozenset([0])),),
        )


def test_interleaved_exclusive_traces_share_nothing():
    # Two cores with private exclusive L2s: concurrent traversal keeps
    # per-core behavior (regression guard for the exclusive fill path
    # under interleaving).
    spec2 = CacheSpec(
        2,
        480 * KiB,
        ways=15,
        indexing=Indexing.VIRTUAL,
        latency=14.0,
        organization=CacheOrganization.EXCLUSIVE,
    )
    machine = _machine_with_l2(spec2, n=2)
    sim = MultiLevelSimulator(machine)
    n = (512 * KiB) // 1024
    streams = [
        [TraceAccess(core=c, vline=i * 16, pline=i * 16) for i in range(n)]
        for c in (0, 1)
    ]
    outcome = sim.run(
        interleave_round_robin(streams), rounds=4, measure_last_round_only=True
    )
    assert outcome.cycles_per_access[0] == pytest.approx(
        outcome.cycles_per_access[1]
    )
    assert outcome.cycles_per_access[0] < 3.0 + 14.0 + 1.0


# -- recovery harness -----------------------------------------------------


@pytest.mark.parametrize("family", family_names())
def test_blind_recovery_has_zero_wrong(family):
    result = recover_machine(generate_machine(family, 0))
    assert result.ok, "\n".join(
        f"{v.parameter}: expected {v.expected!r} detected {v.detected!r}"
        for v in result.wrong
    )
    counts = result.counts()
    assert counts[MATCH] >= 5
    assert counts[UNDETECTABLE] >= 1


def test_declared_undetectable_params_stay_silent():
    # The victim family's buffer and the zoo machines' TLB must be
    # scored undetectable with an explanatory reason, never WRONG.
    result = recover_machine(generate_machine("victim_cache", 1))
    by_name = {v.parameter: v for v in result.verdicts}
    assert by_name["cache.victim.entries"].verdict == UNDETECTABLE
    assert "victim" in by_name["cache.victim.entries"].reason
    assert by_name["tlb.entries"].verdict == UNDETECTABLE
    assert by_name["tlb.entries"].reason  # carries the give-up note


def test_score_report_flags_fabricated_values():
    # A report claiming a TLB on a TLB-less machine must be WRONG.
    gm = generate_machine("sectored", 0)
    backend = SimulatedBackend(gm.cluster, comm_config=gm.comm, noise=0.0, seed=1)
    from repro.core import ServetSuite

    report = ServetSuite(backend).run()
    report.tlb_entries = 4096
    verdicts = {v.parameter: v for v in score_report(report, gm.truth)}
    assert verdicts["tlb.entries"].verdict == WRONG
    # And a wrong cache size likewise.
    report.tlb_entries = None
    report.caches[1].size //= 2
    verdicts = {v.parameter: v for v in score_report(report, gm.truth)}
    assert verdicts["cache.L2.size"].verdict == WRONG


def test_cli_zoo_recover_and_sweep(tmp_path, capsys):
    from repro.cli import main

    assert main(["zoo", "recover", "--family", "odd_assoc", "--seed", "2"]) == 0
    out = capsys.readouterr().out
    assert "WRONG=0" in out

    out_path = tmp_path / "sweep.json"
    assert (
        main(
            [
                "zoo",
                "sweep",
                "--families",
                "exclusive_l2,big_little",
                "--seeds",
                "2",
                "-o",
                str(out_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "0 WRONG" in out
    assert out_path.exists()


def test_giveup_provenance_is_queryable_via_explain(tmp_path, capsys):
    # The TLB give-up on a zoo machine must be an explicit provenance
    # record that `servet explain` can surface.
    from repro.cli import main
    from repro.core import ServetSuite
    from repro.obs import explain

    gm = generate_machine("exclusive_l2", 0)
    backend = SimulatedBackend(gm.cluster, comm_config=gm.comm, noise=0.0, seed=7)
    report = ServetSuite(backend).run()
    text = explain(report, "tlb.entries")
    assert "undetectable" in text

    path = tmp_path / "report.json"
    path.write_text(__import__("json").dumps(report.to_dict(), indent=2))
    assert main(["explain", str(path), "tlb.entries"]) == 0
    out = capsys.readouterr().out
    assert "undetectable" in out
