"""Unit tests for the observability layer (:mod:`repro.obs`).

Covers the three behaviors the rest of the suite leans on:

- span nesting stays correct through the planner's worker pool (where
  contextvars do not propagate and an explicit parent must be threaded
  through);
- histogram percentiles agree with a straightforward reference
  implementation (and with the tuning service's historical convention);
- provenance survives a ``ServetReport.save``/``load`` round trip
  byte-for-byte.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.backends import SimulatedBackend
from repro.core.report import ServetReport
from repro.errors import ConfigurationError, ReproError
from repro.obs import (
    MetricsRegistry,
    ParameterProvenance,
    Tracer,
    explain,
    load_jsonl,
    record_provenance,
    summarize,
)
from repro.obs.metrics import Histogram, percentile
from repro.planner import PlanExecutor
from repro.topology import generic_smp
from repro.topology.machine import all_pairs

# ---------------------------------------------------------------- tracing


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


def test_span_nesting_is_implicit_in_straight_line_code():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            pass
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    # finish order: inner closes first
    assert [s.name for s in tracer.spans()] == ["inner", "outer"]


def test_span_error_status_and_attributes():
    tracer = Tracer(clock=FakeClock())
    with pytest.raises(ValueError):
        with tracer.span("work", kind="probe"):
            raise ValueError("boom")
    (span,) = tracer.spans()
    assert span.status == "error"
    assert span.attributes["kind"] == "probe"
    assert "ValueError: boom" in span.attributes["error"]


def test_virtual_duration_clamps_across_clock_reset():
    virtual = {"now": 10.0}
    tracer = Tracer(clock=FakeClock(), virtual_clock=lambda: virtual["now"])
    with tracer.span("phase"):
        virtual["now"] = 0.0  # the suite resets the backend between phases
    (span,) = tracer.spans()
    assert span.virtual_duration == 0.0


def test_trace_jsonl_round_trip(tmp_path):
    tracer = Tracer(clock=FakeClock(), virtual_clock=FakeClock())
    with tracer.span("phase", phase="cache_size"):
        with tracer.span("probe", kind="traversal"):
            pass
    path = tmp_path / "trace.jsonl"
    tracer.save(path)
    loaded = load_jsonl(path)
    assert [s.to_dict() for s in loaded] == [s.to_dict() for s in tracer.spans()]
    summary = summarize(loaded)
    assert "cache_size" in summary and "traversal=1" in summary


def test_spans_nest_correctly_under_planner_worker_pool():
    """Pooled probe spans must still hang off the submitting span, even
    though worker threads never see the submitter's contextvars."""
    machine = generic_smp(name="pool-smp", n_cores=6)
    backend = SimulatedBackend(machine, seed=7, noise=0.0)
    tracer = Tracer()
    executor = PlanExecutor(backend, jobs=3, tracer=tracer)
    pairs = all_pairs(list(range(6)))
    with tracer.span("phase", phase="communication_costs") as phase_span:
        executor.pairwise_message_latency(pairs, 16 * 1024)
    probe_spans = tracer.find("probe")
    assert len(probe_spans) == len(pairs)
    by_id = {s.span_id: s for s in tracer.spans()}
    for span in probe_spans:
        node = span
        while node.parent_id is not None:
            node = by_id[node.parent_id]
        assert node.span_id == phase_span.span_id, span.span_id
    # every backend call nests under its probe span
    for span in tracer.spans():
        if span.name.startswith("backend."):
            assert by_id[span.parent_id].name == "probe"


# ---------------------------------------------------------------- metrics


def reference_percentile(samples, fraction):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


@pytest.mark.parametrize("seed", range(10))
def test_percentile_matches_reference_implementation(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 200))
    samples = rng.uniform(0.0, 1e3, size=n).tolist()
    for fraction in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
        assert percentile(samples, fraction) == reference_percentile(
            samples, fraction
        ), (seed, n, fraction)


def test_percentile_edge_cases():
    assert percentile([], 0.5) == 0.0
    assert percentile([3.0], 0.99) == 3.0
    with pytest.raises(ConfigurationError):
        percentile([1.0], 1.5)


def test_histogram_window_and_totals():
    hist = Histogram("h", window=4)
    for v in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
        hist.observe(v)
    # window keeps the newest 4 samples; count/sum accumulate over all
    assert hist.samples() == [3.0, 4.0, 5.0, 6.0]
    assert hist.count == 6
    assert hist.total == 21.0
    assert hist.percentile(0.5) == reference_percentile(hist.samples(), 0.5)


def test_registry_get_or_create_and_export():
    registry = MetricsRegistry()
    registry.counter("probes", kind="traversal").inc(3)
    assert registry.counter("probes", kind="traversal") is registry.counter(
        "probes", kind="traversal"
    )
    registry.gauge("occupancy").set(2.5)
    registry.histogram("latency").observe(0.25)
    snapshot = registry.as_dict()
    assert snapshot["counters"]['probes{kind="traversal"}'] == 3
    assert snapshot["gauges"]["occupancy"] == 2.5
    assert snapshot["histograms"]["latency"]["count"] == 1
    assert registry.value("counter", "probes", kind="traversal") == 3
    text = registry.render_text()
    assert 'probes{kind="traversal"} 3' in text


# ------------------------------------------------------------- provenance


def make_report_with_provenance() -> ServetReport:
    report = ServetReport(system="toy", n_cores=2, page_size=4096)
    record_provenance(
        report,
        [
            ParameterProvenance(
                parameter="cache.L1.size",
                value=32768,
                method="l1-peak",
                probes=["traversal:abc123def456"],
                measurements={"traversal:abc123def456": 3.0},
                note="unit-test record",
            ),
            ParameterProvenance(
                parameter="comm.layer0.latency",
                value=1.05e-5,
                method="latency-clustering",
                probes=["message:0123456789ab"],
                measurements={"message:0123456789ab": 1.05e-5},
            ),
        ],
        phase="cache_size",
    )
    return report


def test_provenance_round_trips_through_save_load(tmp_path):
    report = make_report_with_provenance()
    path = tmp_path / "report.json"
    report.save(path)
    loaded = ServetReport.load(path)
    assert loaded.provenance == report.provenance
    assert json.dumps(loaded.provenance, sort_keys=True) == json.dumps(
        report.provenance, sort_keys=True
    )
    # provenance must stay out of the measurement payload
    assert "provenance" not in report.measurement_dict()
    assert ParameterProvenance.from_dict(
        loaded.provenance["cache.L1.size"]
    ).phase == "cache_size"


def test_explain_lists_matches_and_rejects_unknown():
    report = make_report_with_provenance()
    listing = explain(report)
    assert "cache.L1.size" in listing and "comm.layer0.latency" in listing
    block = explain(report, "cache.L1")
    assert "l1-peak" in block and "traversal:abc123def456" in block
    with pytest.raises(ReproError):
        explain(report, "nope.such.parameter")
    empty = ServetReport(system="bare", n_cores=1, page_size=4096)
    assert "no provenance" in explain(empty)
