"""Unit tests for ServetSuite options and timings bookkeeping."""

import pytest

from repro import ServetSuite, SimulatedBackend, dempsey, generic_smp
from repro.core.suite import PHASES, SuiteTimings
from repro.memsim import TLBSpec


class TestSuiteTimings:
    def test_record_and_total(self):
        timings = SuiteTimings()
        timings.record("a", 10.0, 0.1)
        timings.record("b", 20.0, 0.2)
        virtual, wall = timings.total
        assert virtual == 30.0
        assert wall == pytest.approx(0.3)

    def test_phase_names_constant(self):
        assert PHASES == (
            "cache_size",
            "shared_caches",
            "memory_overhead",
            "communication_costs",
        )


class TestProbeTlbOption:
    def test_disabled_probe_skips_phase(self):
        backend = SimulatedBackend(dempsey(), seed=2)
        report = ServetSuite(backend, probe_tlb=False).run()
        assert report.tlb_entries is None
        assert "tlb_detection" not in report.timings

    def test_enabled_probe_records_phase(self):
        machine = generic_smp(
            n_cores=2,
            levels=[("32KB", 8, 1, 3.0), ("2MB", 8, 1, 18.0)],
            tlb=TLBSpec(entries=128, walk_cycles=40.0),
        )
        backend = SimulatedBackend(machine, seed=2)
        report = ServetSuite(backend).run()
        assert report.tlb_entries == 128
        assert "tlb_detection" in report.timings
        virtual, _ = report.timings["tlb_detection"]
        assert virtual > 0

    def test_no_tlb_machine_reports_none_but_still_probes(self):
        backend = SimulatedBackend(dempsey(), seed=2)
        report = ServetSuite(backend).run()
        assert report.tlb_entries is None
        assert "tlb_detection" in report.timings


class TestSuiteCoreSelection:
    def test_explicit_node_cores_subset(self):
        backend = SimulatedBackend(dempsey(), seed=2)
        report = ServetSuite(backend, node_cores=[0], comm_cores=[0, 1]).run()
        # Shared-cache detection over a single core finds nothing.
        assert all(not c.shared_pairs for c in report.caches)
        assert len(report.comm_layers) == 1


class TestSimCacheOption:
    def test_default_follows_backend(self):
        backend = SimulatedBackend(dempsey(), seed=2)
        assert ServetSuite(backend).sim_cache is True
        bypassed = SimulatedBackend(dempsey(), seed=2, sim_cache=False)
        assert ServetSuite(bypassed).sim_cache is False

    def test_suite_option_overrides_backend(self):
        backend = SimulatedBackend(dempsey(), seed=2)
        suite = ServetSuite(backend, sim_cache=False)
        assert suite.sim_cache is False
        assert backend.sim_cache is False  # pushed down to the engine
        assert backend.engine.outcome_cache is None

    def test_fingerprint_records_sim_cache(self):
        backend = SimulatedBackend(dempsey(), seed=2)
        cached = ServetSuite(backend, sim_cache=True)._fingerprint()
        bypassed = ServetSuite(
            SimulatedBackend(dempsey(), seed=2), sim_cache=False
        )._fingerprint()
        assert cached["sim_cache"] is True
        assert bypassed["sim_cache"] is False
        assert {k: v for k, v in cached.items() if k != "sim_cache"} == {
            k: v for k, v in bypassed.items() if k != "sim_cache"
        }

    def test_reports_identical_with_and_without_cache(self):
        cached = ServetSuite(SimulatedBackend(dempsey(), seed=2)).run()
        bypassed = ServetSuite(
            SimulatedBackend(dempsey(), seed=2), sim_cache=False
        ).run()
        assert cached.measurement_dict() == bypassed.measurement_dict()
