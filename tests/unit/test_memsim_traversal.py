"""Unit tests for the analytic traversal engine."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.memsim import (
    ContiguousPaging,
    PrefetchModel,
    Traversal,
    TraversalEngine,
    strided_addresses,
)
from repro.memsim.prefetch import NO_PREFETCH
from repro.topology import dunnington, generic_smp
from repro.units import KiB, MiB


def test_strided_addresses_shape():
    addrs = strided_addresses(8 * KiB, 1 * KiB)
    assert list(addrs) == [i * 1024 for i in range(8)]


def test_strided_addresses_minimum_one_access():
    assert list(strided_addresses(100, 1024)) == [0]


@pytest.mark.parametrize("bad", [(0, 1024), (4096, 0), (4096, -64)])
def test_strided_addresses_rejects_bad_args(bad):
    with pytest.raises(MeasurementError):
        strided_addresses(*bad)


class TestSingleCore:
    def engine(self, **kw):
        machine = generic_smp(
            n_cores=2,
            levels=[("32KB", 8, 1, 3.0), ("1MB", 8, 2, 20.0)],
            mem_latency=200.0,
        )
        return TraversalEngine(machine, **kw)

    def test_l1_resident_array_costs_l1_latency(self):
        engine = self.engine()
        assert engine.single(16 * KiB, 1024, rng=0) == pytest.approx(3.0)

    def test_l1_cliff_is_exactly_at_capacity(self):
        engine = self.engine()
        at = engine.single(32 * KiB, 1024, rng=0)
        above = engine.single(64 * KiB, 1024, rng=0)
        assert at == pytest.approx(3.0)
        assert above >= 3.0 + 20.0  # every access falls through L1

    def test_contiguous_paging_gives_sharp_l2_cliff(self):
        engine = self.engine(paging=ContiguousPaging())
        at = engine.single(1 * MiB, 1024, rng=0)
        above = engine.single(2 * MiB, 1024, rng=0)
        assert at == pytest.approx(23.0)
        assert above == pytest.approx(223.0)

    def test_random_paging_smears_l2_cliff(self):
        engine = self.engine()
        at = engine.single(1 * MiB, 1024, rng=0)
        # With random pages some conflict misses appear *at* capacity
        # (at size == CS the expected conflict miss rate is ~50%)...
        assert at > 23.0
        # ...but it is nowhere near the all-miss plateau of 223 cycles.
        assert at < 200.0

    def test_miss_fractions_telescope(self):
        engine = self.engine()
        result = engine.run([Traversal(0, 4 * MiB, 1024)], rng=0)
        fractions = result.miss_fraction[0]
        assert len(fractions) == 2
        assert 1.0 >= fractions[0] >= fractions[1] >= 0.0

    def test_rejects_unknown_core(self):
        with pytest.raises(MeasurementError):
            self.engine().run([Traversal(7, 4 * KiB, 1024)])

    def test_rejects_duplicate_core(self):
        engine = self.engine()
        with pytest.raises(MeasurementError):
            engine.run([Traversal(0, 4 * KiB, 1024), Traversal(0, 8 * KiB, 1024)])

    def test_seconds_per_round_accounting(self):
        engine = self.engine()
        result = engine.run([Traversal(0, 16 * KiB, 1024)], rng=0)
        n, cyc = result.n_accesses[0], result.cycles_per_access[0]
        assert result.seconds_per_round[0] == pytest.approx(
            n * cyc / engine.machine.clock_hz
        )


class TestPrefetchInteraction:
    def test_small_stride_hides_memory_latency(self):
        machine = generic_smp(
            n_cores=1, levels=[("32KB", 8, 1, 3.0)], mem_latency=200.0
        )
        engine = TraversalEngine(machine, prefetch=PrefetchModel(512, 0.9))
        hidden = engine.single(1 * MiB, 256, rng=0)
        exposed = engine.single(1 * MiB, 1024, rng=0)
        assert hidden < exposed / 3  # prefetcher flattens the curve

    def test_no_prefetch_model_equalizes(self):
        machine = generic_smp(
            n_cores=1, levels=[("32KB", 8, 1, 3.0)], mem_latency=200.0
        )
        engine = TraversalEngine(machine, prefetch=NO_PREFETCH)
        small = engine.single(1 * MiB, 256, rng=0)
        assert small == pytest.approx(203.0)


class TestConcurrentTraversals:
    def test_shared_cache_pair_thrashes(self):
        machine = dunnington()
        engine = TraversalEngine(machine)
        size = 2 * MiB  # (2/3) of the 3MB L2
        ref = engine.single(size, 1024, rng=1)
        pair = engine.run(
            [Traversal(0, size, 1024), Traversal(12, size, 1024)], rng=1
        )
        mean = np.mean(list(pair.cycles_per_access.values()))
        assert mean / ref > 2.0  # the Fig. 5 criterion

    def test_private_cache_pair_does_not(self):
        machine = dunnington()
        engine = TraversalEngine(machine)
        size = 2 * MiB
        ref = engine.single(size, 1024, rng=1)
        pair = engine.run(
            [Traversal(0, size, 1024), Traversal(3, size, 1024)], rng=1
        )
        mean = np.mean(list(pair.cycles_per_access.values()))
        assert mean / ref < 1.5
