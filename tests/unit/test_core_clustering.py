"""Unit tests for value clustering and pair-group inference."""

import pytest

from repro.core.clustering import SimilarityCluster, cluster_similar, groups_from_pairs
from repro.errors import DetectionError


class TestClusterSimilar:
    def test_paper_example_two_latency_groups(self):
        items = [("a", 10.0), ("b", 10.5), ("c", 20.0), ("d", 19.5)]
        clusters = cluster_similar(items, rel_tol=0.15)
        assert len(clusters) == 2
        assert sorted(clusters[0].members) == ["a", "b"]
        assert sorted(clusters[1].members) == ["c", "d"]

    def test_sorted_ascending_by_value(self):
        items = [("slow", 100.0), ("fast", 1.0)]
        clusters = cluster_similar(items, rel_tol=0.1)
        assert [c.members[0] for c in clusters] == ["fast", "slow"]

    def test_representative_is_running_mean(self):
        clusters = cluster_similar([("a", 10.0), ("b", 12.0)], rel_tol=0.5)
        assert len(clusters) == 1
        assert clusters[0].value == pytest.approx(11.0)

    def test_zero_tolerance_only_merges_exact(self):
        clusters = cluster_similar([("a", 1.0), ("b", 1.0), ("c", 1.1)], rel_tol=0.0)
        assert len(clusters) == 2

    def test_negative_tolerance_rejected(self):
        with pytest.raises(DetectionError):
            cluster_similar([("a", 1.0)], rel_tol=-0.1)

    def test_empty_input(self):
        assert cluster_similar([], rel_tol=0.1) == []

    def test_greedy_first_match_semantics(self):
        # 1.0 founds c0; 1.2 is outside 10% of 1.0 -> founds c1; then
        # 1.09 joins whichever it matches FIRST (c0, founded earlier).
        clusters = cluster_similar(
            [("a", 1.0), ("b", 1.2), ("c", 1.09)], rel_tol=0.10
        )
        by_member = {m: i for i, c in enumerate(clusters) for m in c.members}
        assert by_member["c"] == by_member["a"]


class TestSimilarityCluster:
    def test_matches_relative_window(self):
        cluster = SimilarityCluster(value=100.0)
        cluster.add("x", 100.0)
        assert cluster.matches(109.0, 0.1)
        assert not cluster.matches(111.0, 0.1)


class TestGroupsFromPairs:
    def test_paper_example(self):
        groups = groups_from_pairs([(0, 1), (0, 2), (3, 4), (3, 5)])
        assert groups == [[0, 1, 2], [3, 4, 5]]

    def test_chain_merges_transitively(self):
        assert groups_from_pairs([(1, 2), (2, 3), (3, 4)]) == [[1, 2, 3, 4]]

    def test_empty(self):
        assert groups_from_pairs([]) == []

    def test_order_independent(self):
        a = groups_from_pairs([(5, 3), (1, 5), (2, 4)])
        b = groups_from_pairs([(2, 4), (3, 5), (5, 1)])
        assert a == b == [[1, 3, 5], [2, 4]]

    def test_duplicate_pairs_harmless(self):
        assert groups_from_pairs([(0, 1), (0, 1), (1, 0)]) == [[0, 1]]
