"""Unit tests for :class:`ServetReport` (de)serialization and queries."""

import pytest

from repro.core.report import (
    CacheLevelReport,
    CommLayerReport,
    MemoryLevelReport,
    ServetReport,
)
from repro.errors import ReproError


def sample_report() -> ServetReport:
    return ServetReport(
        system="toy",
        n_cores=4,
        page_size=4096,
        caches=[
            CacheLevelReport(level=1, size=32768, method="l1-peak"),
            CacheLevelReport(
                level=2,
                size=2 * 1024 * 1024,
                method="probabilistic",
                shared_pairs=[(0, 1), (2, 3)],
                sharing_groups=[[0, 1], [2, 3]],
            ),
        ],
        memory_reference=3e9,
        memory_levels=[
            MemoryLevelReport(
                bandwidth=2e9,
                pairs=[(0, 1)],
                groups=[[0, 1]],
                scalability=[3e9, 2e9],
            )
        ],
        comm_probe_size=32768,
        comm_layers=[
            CommLayerReport(
                index=0,
                latency=1e-6,
                pairs=[(0, 1), (2, 3)],
                characterization=[(1024, 1e-6, 1.024e9), (4096, 2e-6, 2.048e9)],
                scalability=[(2, 1.5e-6, 1.5), (4, 3e-6, 3.0)],
            ),
            CommLayerReport(
                index=1,
                latency=5e-6,
                pairs=[(0, 2), (0, 3), (1, 2), (1, 3)],
            ),
        ],
        timings={"cache_size": (120.0, 0.5)},
    )


class TestQueries:
    def test_cache_sizes(self):
        assert sample_report().cache_sizes == [32768, 2 * 1024 * 1024]

    def test_cache_sharing_group(self):
        report = sample_report()
        assert report.cache_sharing_group(0, 2) == [0, 1]
        assert report.cache_sharing_group(0, 1) == [0]
        with pytest.raises(ReproError):
            report.cache_sharing_group(0, 9)

    def test_comm_layer_of_order_insensitive(self):
        report = sample_report()
        assert report.comm_layer_of(1, 0).index == 0
        assert report.comm_layer_of(3, 0).index == 1
        with pytest.raises(ReproError):
            report.comm_layer_of(0, 0)

    def test_memory_level_of(self):
        report = sample_report()
        assert report.memory_level_of(1, 0).bandwidth == 2e9
        assert report.memory_level_of(2, 3) is None

    def test_private_flag(self):
        report = sample_report()
        assert report.caches[0].private
        assert not report.caches[1].private


class TestLayerEstimates:
    def test_latency_estimate_below_curve(self):
        layer = sample_report().comm_layers[0]
        assert layer.estimate_latency(10) == pytest.approx(1e-6)

    def test_latency_estimate_midpoint(self):
        layer = sample_report().comm_layers[0]
        mid = layer.estimate_latency((1024 + 4096) // 2)
        assert 1e-6 < mid < 2e-6

    def test_latency_estimate_without_curve_falls_back(self):
        layer = sample_report().comm_layers[1]
        assert layer.estimate_latency(123456) == 5e-6

    def test_slowdown_interpolation(self):
        layer = sample_report().comm_layers[0]
        assert layer.slowdown_at(1) == 1.0
        assert layer.slowdown_at(2) == pytest.approx(1.5)
        assert layer.slowdown_at(3) == pytest.approx(2.25)
        assert layer.slowdown_at(8) == pytest.approx(6.0)  # extrapolated

    def test_slowdown_without_curve_is_one(self):
        layer = sample_report().comm_layers[1]
        assert layer.slowdown_at(100) == 1.0


class TestSerialization:
    def test_roundtrip_dict(self):
        report = sample_report()
        clone = ServetReport.from_dict(report.to_dict())
        assert clone == report

    def test_roundtrip_file(self, tmp_path):
        report = sample_report()
        path = tmp_path / "report.json"
        report.save(path)
        assert ServetReport.load(path) == report

    def test_json_is_plain(self, tmp_path):
        import json

        report = sample_report()
        path = tmp_path / "report.json"
        report.save(path)
        data = json.loads(path.read_text())
        assert data["system"] == "toy"
        assert data["caches"][1]["shared_pairs"] == [[0, 1], [2, 3]]

    def test_malformed_data_raises_repro_error(self):
        with pytest.raises(ReproError):
            ServetReport.from_dict({"system": "x"})

    def test_roundtrip_with_phase_status_and_errors(self):
        report = sample_report()
        report.phase_status = {
            "cache_size": "ok",
            "shared_caches": "degraded",
            "memory_overhead": "failed",
            "communication_costs": "skipped",
        }
        report.phase_errors = {
            "shared_caches": "recovered from measurement faults (2 retries)",
            "memory_overhead": "copy_bandwidth: no valid measurement",
        }
        clone = ServetReport.from_dict(report.to_dict())
        assert clone == report
        assert clone.phase_status["memory_overhead"] == "failed"
        assert clone.phase_errors == report.phase_errors

    def test_pre_resilience_report_loads_with_empty_status(self):
        data = sample_report().to_dict()
        del data["phase_status"]
        del data["phase_errors"]
        clone = ServetReport.from_dict(data)
        assert clone.phase_status == {}
        assert not clone.degraded
        assert clone.phase_ok("cache_size")


class TestDegradedQueries:
    def test_degraded_flag_and_failed_phases(self):
        report = sample_report()
        assert not report.degraded
        report.phase_status = {"cache_size": "ok", "memory_overhead": "failed"}
        assert report.degraded
        assert report.failed_phases == ["memory_overhead"]
        assert not report.phase_ok("memory_overhead")

    def test_skipped_alone_does_not_flag_degraded(self):
        # A structurally skipped phase (e.g. unicore communication) is
        # not a fault; only degraded/failed statuses taint the run.
        report = sample_report()
        report.phase_status = {"cache_size": "ok", "communication_costs": "skipped"}
        assert not report.degraded

    def test_summary_shows_degraded_phases(self):
        report = sample_report()
        report.phase_status = {"cache_size": "ok", "memory_overhead": "failed"}
        report.phase_errors = {"memory_overhead": "dead bandwidth meter"}
        text = report.summary()
        assert "Phase status (degraded run):" in text
        assert "memory_overhead: failed — dead bandwidth meter" in text

    def test_summary_silent_when_healthy(self):
        report = sample_report()
        report.phase_status = {name: "ok" for name in report.timings}
        assert "Phase status" not in report.summary()


def test_summary_mentions_everything():
    text = sample_report().summary()
    for token in ("toy", "L1", "32KB", "2MB", "layer 0", "cache_size"):
        assert token in text


def test_save_is_atomic(tmp_path):
    """Save replaces the target in one rename and leaves no temp files."""
    path = tmp_path / "report.json"
    path.write_text("previous contents")
    sample_report().save(path)
    data = path.read_text()
    assert "previous" not in data and '"system": "toy"' in data
    assert [p.name for p in tmp_path.iterdir()] == ["report.json"]
