"""Unit tests for the nonblocking primitives (isend/irecv/wait)."""

import pytest

from repro.errors import SimulationError
from repro.netsim import default_comm_config
from repro.simmpi import World
from repro.simmpi.collectives import alltoall
from repro.topology import Cluster, dunnington
from repro.units import MiB


def make_world(n=2):
    cluster = Cluster("dunnington", dunnington())
    return World(cluster, default_comm_config(cluster), list(range(n)))


class TestIsend:
    def test_returns_handle_immediately(self):
        world = make_world()
        observed = {}

        def sender(rank):
            handle = yield rank.isend(1, 10 * MiB)  # rendezvous-sized
            observed["t_after_isend"] = rank.now
            observed["done_at_isend"] = handle.done
            yield rank.wait(handle)
            observed["t_after_wait"] = rank.now

        def receiver(rank):
            yield rank.compute(1.0)
            yield rank.recv(0)

        world.add_process(sender, 0)
        world.add_process(receiver, 1)
        world.run()
        assert observed["t_after_isend"] < 1e-6  # did not block
        assert not observed["done_at_isend"]
        assert observed["t_after_wait"] >= 1.0  # wait blocked to transfer end

    def test_eager_isend_completes_instantly(self):
        world = make_world()
        observed = {}

        def sender(rank):
            handle = yield rank.isend(1, 1024)
            observed["done"] = handle.done
            yield rank.wait(handle)
            observed["t"] = rank.now

        def receiver(rank):
            yield rank.compute(0.5)
            yield rank.recv(0)

        world.add_process(sender, 0)
        world.add_process(receiver, 1)
        world.run()
        assert observed["done"] is True
        assert observed["t"] < 1e-6

    def test_overlap_compute_with_transfer(self):
        world = make_world()
        finish = {}

        def sender(rank):
            handle = yield rank.isend(1, 10 * MiB)
            yield rank.compute(5e-3)  # overlaps the transfer
            yield rank.wait(handle)
            finish["sender"] = rank.now

        def receiver(rank):
            yield rank.recv(0)
            finish["receiver"] = rank.now

        world.add_process(sender, 0)
        world.add_process(receiver, 1)
        world.run()
        transfer = finish["receiver"]
        # Sender finishes at max(compute, transfer), not at their sum.
        assert finish["sender"] == pytest.approx(max(5e-3, transfer), rel=1e-6)


class TestIrecv:
    def test_resolves_with_source_and_size(self):
        world = make_world()
        got = {}

        def sender(rank):
            yield rank.compute(1e-4)
            yield rank.send(1, 2048, tag=5)

        def receiver(rank):
            handle = yield rank.irecv(0, tag=5)
            assert not handle.done
            got["value"] = yield rank.wait(handle)

        world.add_process(sender, 0)
        world.add_process(receiver, 1)
        world.run()
        assert got["value"] == (0, 2048)

    def test_irecv_matches_unexpected_eager_message(self):
        world = make_world()
        got = {}

        def sender(rank):
            yield rank.send(1, 512, tag=1)

        def receiver(rank):
            yield rank.compute(1e-3)  # message arrives before the post
            handle = yield rank.irecv(0, tag=1)
            got["value"] = yield rank.wait(handle)

        world.add_process(sender, 0)
        world.add_process(receiver, 1)
        world.run()
        assert got["value"] == (0, 512)

    def test_wait_after_completion_is_instant(self):
        world = make_world()

        def sender(rank):
            yield rank.send(1, 128, tag=2)

        def receiver(rank):
            handle = yield rank.irecv(0, tag=2)
            yield rank.compute(1e-3)  # completes in the background
            value = yield rank.wait(handle)
            assert value == (0, 128)
            assert rank.now >= 1e-3

        world.add_process(sender, 0)
        world.add_process(receiver, 1)
        world.run()

    def test_two_waiters_on_one_handle_rejected(self):
        world = make_world(3)
        shared = {}

        def owner(rank):
            handle = yield rank.irecv(0)
            shared["h"] = handle
            yield rank.wait(handle)

        def freeloader(rank):
            yield rank.compute(1e-6)  # let the owner post first
            yield rank.wait(shared["h"])

        def idle(rank):
            yield rank.compute(0.0)

        world.add_process(owner, 1)
        world.add_process(freeloader, 2)
        world.add_process(idle, 0)
        with pytest.raises(SimulationError, match="waiting on one handle"):
            world.run()

    def test_wait_requires_a_handle(self):
        world = make_world()

        def bad(rank):
            yield rank.wait("nope")  # type: ignore[arg-type]

        def idle(rank):
            yield rank.compute(0.0)

        world.add_process(bad, 0)
        world.add_process(idle, 1)
        with pytest.raises(SimulationError):
            world.run()


class TestRendezvousAlltoall:
    @pytest.mark.parametrize("n", [3, 5, 6])
    def test_non_power_of_two_rendezvous_completes(self, n):
        """The pre-posted irecv keeps the ring-shift schedule alive even
        when every message uses the rendezvous protocol."""
        cluster = Cluster("dunnington", dunnington())
        world = World(cluster, default_comm_config(cluster), list(range(n)))

        def prog(rank):
            yield from alltoall(rank, 2 * MiB)  # rendezvous-sized

        world.spawn_all(prog)
        result = world.run()
        assert result.messages == n * (n - 1)
