"""Unit tests for the CLI."""

import json

import pytest

from repro.cli import main


def test_machines_lists_all(capsys):
    assert main(["machines"]) == 0
    out = capsys.readouterr().out
    for name in ("dunnington", "finis_terrae", "dempsey", "athlon_3200"):
        assert name in out


def test_run_writes_report(tmp_path, capsys):
    path = tmp_path / "report.json"
    assert main(["run", "--machine", "dempsey", "-o", str(path)]) == 0
    data = json.loads(path.read_text())
    assert data["system"] == "dempsey"
    assert [c["size"] for c in data["caches"]] == [16384, 2097152]
    out = capsys.readouterr().out
    assert "Cache hierarchy" in out


def test_run_unknown_machine_fails_cleanly(capsys):
    assert main(["run", "--machine", "cray-1"]) == 1
    assert "error:" in capsys.readouterr().err


def test_report_roundtrip(tmp_path, capsys):
    path = tmp_path / "report.json"
    main(["run", "--machine", "athlon_3200", "-o", str(path)])
    capsys.readouterr()
    assert main(["report", str(path)]) == 0
    assert "athlon_3200" in capsys.readouterr().out


def test_advise(tmp_path, capsys):
    path = tmp_path / "report.json"
    main(["run", "--machine", "dempsey", "-o", str(path)])
    capsys.readouterr()
    assert main(["advise", str(path)]) == 0
    out = capsys.readouterr().out
    assert "matmul tile for L1" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_run_resume_requires_checkpoint(capsys):
    assert main(["run", "--machine", "dempsey", "--resume"]) == 2
    assert "--resume requires --checkpoint" in capsys.readouterr().err


def test_run_with_checkpoint_then_resume(tmp_path, capsys):
    ckpt = tmp_path / "ckpt.json"
    assert main(["run", "--machine", "dempsey", "--checkpoint", str(ckpt)]) == 0
    assert ckpt.exists()
    data = json.loads(ckpt.read_text())
    assert "cache_size" in data["completed"]
    capsys.readouterr()
    # Resuming a finished run re-measures nothing and still reports.
    assert main(
        ["run", "--machine", "dempsey", "--checkpoint", str(ckpt), "--resume"]
    ) == 0
    assert "Cache hierarchy" in capsys.readouterr().out


def test_run_lenient_with_fault_plan_degrades(tmp_path, capsys):
    from repro import FaultPlan

    plan_path = tmp_path / "plan.json"
    # A dead bandwidth meter: memory phase fails, suite survives.
    FaultPlan(seed=1, nan_rate=1.0, only=("bandwidth",)).save(plan_path)
    report_path = tmp_path / "report.json"
    code = main(
        [
            "run",
            "--machine",
            "dempsey",
            "--fault-plan",
            str(plan_path),
            "--retries",
            "2",
            "--lenient",
            "-o",
            str(report_path),
        ]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "WARNING: degraded run" in captured.err
    assert "memory_overhead=failed" in captured.err
    data = json.loads(report_path.read_text())
    assert data["phase_status"]["memory_overhead"] == "failed"
    assert data["phase_status"]["cache_size"] == "ok"


def test_run_strict_with_fault_plan_fails_loudly(tmp_path, capsys):
    from repro import FaultPlan

    plan_path = tmp_path / "plan.json"
    FaultPlan(seed=1, nan_rate=1.0, only=("bandwidth",)).save(plan_path)
    code = main(
        [
            "run",
            "--machine",
            "dempsey",
            "--fault-plan",
            str(plan_path),
            "--retries",
            "2",
        ]
    )
    assert code == 1
    assert "error:" in capsys.readouterr().err


def test_run_with_samples_hardening(tmp_path):
    path = tmp_path / "report.json"
    assert main(
        ["run", "--machine", "athlon_3200", "--samples", "2", "-o", str(path)]
    ) == 0
    data = json.loads(path.read_text())
    assert data["caches"]


def test_run_no_sim_cache_matches_cached_run(tmp_path, capsys):
    cached = tmp_path / "cached.json"
    bypassed = tmp_path / "bypassed.json"
    assert main(["run", "--machine", "dempsey", "-o", str(cached)]) == 0
    assert main(
        ["run", "--machine", "dempsey", "--no-sim-cache", "-o", str(bypassed)]
    ) == 0
    a = json.loads(cached.read_text())
    b = json.loads(bypassed.read_text())
    # The cache only changes wall-clock time, never measurements.
    for volatile in ("timings", "total_wall_seconds"):
        a.pop(volatile, None)
        b.pop(volatile, None)
    assert a == b


SMALL_MIX = (
    "streaming:lines=512,rounds=2;"
    "blocked:lines=256,block=64,repeats=2,rounds=2;"
    "zipf:accesses=1024,lines=512,s=1.2;"
    "stencil:lines=256,halo=1,sweeps=1"
)


def test_workload_list(capsys):
    assert main(["workload", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("streaming", "blocked", "zipf", "stencil"):
        assert name in out


def test_workload_profile(capsys):
    assert main(
        ["workload", "profile", "zipf:lines=256,accesses=1024",
         "--capacity", "64,256"]
    ) == 0
    out = capsys.readouterr().out
    assert "reuse profile of zipf:" in out
    assert "accesses 1024" in out
    assert "solo miss ratio @ 64 lines" in out
    assert "solo miss ratio @ 256 lines" in out


def test_workload_profile_json_roundtrips(capsys):
    assert main(
        ["workload", "profile", "streaming:lines=128,rounds=2", "--json"]
    ) == 0
    from repro.workload import ReuseProfile

    profile = ReuseProfile.from_dict(json.loads(capsys.readouterr().out))
    assert profile.accesses == 256
    assert profile.distinct_lines == 128


def test_workload_profile_bad_spec_fails_cleanly(capsys):
    assert main(["workload", "profile", "zipf:warp=9"]) == 1
    assert "error:" in capsys.readouterr().err


def test_advise_coschedule(tmp_path, capsys, dunnington_report):
    path = tmp_path / "dunnington.json"
    dunnington_report.save(path)
    assert main(
        ["advise", "co-schedule", "--report", str(path),
         "--workloads", SMALL_MIX, "--cache-level", "2",
         "--instances", "2", "--top", "2"]
    ) == 0
    out = capsys.readouterr().out
    assert "Co-scheduling advice for dunnington" in out
    assert "#1:" in out and "#2:" in out
    assert "worst slowdown" in out
    assert "best:" in out


def test_advise_coschedule_json(tmp_path, capsys, dunnington_report):
    path = tmp_path / "dunnington.json"
    dunnington_report.save(path)
    assert main(
        ["advise", "co-schedule", "--report", str(path),
         "--workloads", "streaming:lines=128,rounds=2;zipf:accesses=256,lines=128",
         "--json"]
    ) == 0
    advice = json.loads(capsys.readouterr().out)
    assert advice["system"] == "dunnington"
    assert advice["ranked"]
    assert advice["provenance"]["method"]


def test_advise_coschedule_requires_workloads(tmp_path, capsys, dunnington_report):
    path = tmp_path / "dunnington.json"
    dunnington_report.save(path)
    assert main(["advise", "co-schedule", "--report", str(path)]) == 1
    assert "--workloads" in capsys.readouterr().err


def test_advise_coschedule_requires_report(capsys):
    assert main(
        ["advise", "co-schedule", "--workloads", "streaming"]
    ) == 1
    assert "--report" in capsys.readouterr().err


def test_advise_coschedule_no_shared_cache_fails_cleanly(tmp_path, capsys):
    # dempsey's caches are all private: there is nothing to co-schedule.
    path = tmp_path / "dempsey.json"
    main(["run", "--machine", "dempsey", "-o", str(path)])
    capsys.readouterr()
    code = main(
        ["advise", "co-schedule", "--report", str(path),
         "--workloads", "streaming;zipf"]
    )
    assert code == 1
    assert "shared" in capsys.readouterr().err


def test_query_coschedule(tmp_path, capsys, dunnington_report):
    path = tmp_path / "dunnington.json"
    dunnington_report.save(path)
    assert main(
        ["query", str(path), "co-schedule", "--workloads", SMALL_MIX,
         "--cache-level", "2", "--instances", "2", "--top", "1"]
    ) == 0
    result = json.loads(capsys.readouterr().out)
    assert result["system"] == "dunnington"
    assert len(result["ranked"]) == 1
    assert result["ranked"][0]["worst_slowdown"] >= 1.0


def test_no_sim_cache_invalidates_cached_checkpoint(tmp_path, capsys):
    ckpt = tmp_path / "ckpt.json"
    assert main(["run", "--machine", "dempsey", "--checkpoint", str(ckpt)]) == 0
    capsys.readouterr()
    # The fingerprint records the knob: a cached checkpoint must not
    # seed a --no-sim-cache baseline run.
    code = main(
        [
            "run",
            "--machine",
            "dempsey",
            "--no-sim-cache",
            "--checkpoint",
            str(ckpt),
            "--resume",
        ]
    )
    assert code == 1
    assert "error:" in capsys.readouterr().err
