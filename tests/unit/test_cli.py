"""Unit tests for the CLI."""

import json

import pytest

from repro.cli import main


def test_machines_lists_all(capsys):
    assert main(["machines"]) == 0
    out = capsys.readouterr().out
    for name in ("dunnington", "finis_terrae", "dempsey", "athlon_3200"):
        assert name in out


def test_run_writes_report(tmp_path, capsys):
    path = tmp_path / "report.json"
    assert main(["run", "--machine", "dempsey", "-o", str(path)]) == 0
    data = json.loads(path.read_text())
    assert data["system"] == "dempsey"
    assert [c["size"] for c in data["caches"]] == [16384, 2097152]
    out = capsys.readouterr().out
    assert "Cache hierarchy" in out


def test_run_unknown_machine_fails_cleanly(capsys):
    assert main(["run", "--machine", "cray-1"]) == 1
    assert "error:" in capsys.readouterr().err


def test_report_roundtrip(tmp_path, capsys):
    path = tmp_path / "report.json"
    main(["run", "--machine", "athlon_3200", "-o", str(path)])
    capsys.readouterr()
    assert main(["report", str(path)]) == 0
    assert "athlon_3200" in capsys.readouterr().out


def test_advise(tmp_path, capsys):
    path = tmp_path / "report.json"
    main(["run", "--machine", "dempsey", "-o", str(path)])
    capsys.readouterr()
    assert main(["advise", str(path)]) == 0
    out = capsys.readouterr().out
    assert "matmul tile for L1" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
