"""Unit tests for the daemon-facing CLI: ``query --remote`` and address
parsing.  Every failure mode must come out as a clean ``error:`` exit,
never a traceback."""

import json
import socket
import struct
import threading

import pytest

from repro.cli import main
from repro.errors import ServicedError
from repro.serviced import TuningDaemon


@pytest.fixture(scope="module")
def daemon(dunnington_report):
    with TuningDaemon(report=dunnington_report, workers=2) as d:
        yield d


def test_query_remote_returns_json(daemon, capsys):
    code = main(
        [
            "query",
            "-",
            "matmul-tile",
            "--level",
            "2",
            "--remote",
            f"{daemon.host}:{daemon.port}",
        ]
    )
    assert code == 0
    data = json.loads(capsys.readouterr().out)
    assert data["side"] > 0


def test_query_remote_latency_pair(daemon, capsys):
    code = main(
        [
            "query",
            "-",
            "latency",
            "--pair",
            "0,1",
            "--size",
            "4096",
            "--remote",
            f"{daemon.host}:{daemon.port}",
        ]
    )
    assert code == 0
    assert json.loads(capsys.readouterr().out)["latency"] > 0


def test_connection_refused_is_clean_error(capsys):
    # Grab a port the kernel just released: nothing listens on it.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    code = main(["query", "-", "tile", "--remote", f"127.0.0.1:{port}"])
    assert code == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "cannot connect to tuning daemon" in err


def test_malformed_response_frame_is_clean_error(capsys):
    # A server that answers with bytes that are not JSON: the client
    # must diagnose the frame, and the CLI must exit via ``error:``.
    listener = socket.create_server(("127.0.0.1", 0))
    port = listener.getsockname()[1]

    def bad_server():
        conn, _ = listener.accept()
        conn.recv(4096)  # swallow the request
        body = b"\xffnot json"
        conn.sendall(struct.pack(">I", len(body)) + body)
        conn.close()

    thread = threading.Thread(target=bad_server, daemon=True)
    thread.start()
    try:
        code = main(["query", "-", "tile", "--remote", f"127.0.0.1:{port}"])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "malformed frame payload" in err
    finally:
        thread.join(timeout=5)
        listener.close()


def test_server_hangup_midframe_is_clean_error(capsys):
    # Length prefix promises 100 bytes, the server hangs up after 3.
    listener = socket.create_server(("127.0.0.1", 0))
    port = listener.getsockname()[1]

    def flaky_server():
        conn, _ = listener.accept()
        conn.recv(4096)
        conn.sendall(struct.pack(">I", 100) + b"abc")
        conn.close()

    thread = threading.Thread(target=flaky_server, daemon=True)
    thread.start()
    try:
        code = main(["query", "-", "tile", "--remote", f"127.0.0.1:{port}"])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "mid-frame" in err
    finally:
        thread.join(timeout=5)
        listener.close()


@pytest.mark.parametrize("spec", ["nocolon", ":7777", "host:notaport"])
def test_bad_remote_address_is_clean_error(spec, capsys):
    assert main(["query", "-", "tile", "--remote", spec]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")


def test_daemon_error_answer_is_clean_error(daemon, capsys):
    # The daemon answers ok=false for an impossible query; the CLI must
    # relay that as error:, not crash on a missing "answer" key.
    code = main(
        [
            "query",
            "-",
            "tile",
            "--level",
            "99",
            "--remote",
            f"{daemon.host}:{daemon.port}",
        ]
    )
    assert code == 1
    assert capsys.readouterr().err.startswith("error:")


def test_parse_hostport_roundtrip():
    from repro.cli import _parse_hostport

    assert _parse_hostport("127.0.0.1:7777") == ("127.0.0.1", 7777)
    with pytest.raises(ServicedError, match="not HOST:PORT"):
        _parse_hostport("7777")
    with pytest.raises(ServicedError, match="non-numeric port"):
        _parse_hostport("host:seven")
