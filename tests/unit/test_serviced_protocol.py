"""Unit tests for the daemon wire protocol: framing and the query codec."""

import io
import json
import struct

import pytest

from repro.errors import ServicedError
from repro.serviced.protocol import (
    MAX_FRAME,
    control_request,
    decode_query,
    encode_frame,
    encode_query,
    error_response,
    ok_response,
    pack_body,
    query_request,
    read_frame,
)
from repro.service.server import (
    AggregationQuery,
    BcastQuery,
    CoScheduleQuery,
    CommLatencyQuery,
    MatmulTileQuery,
    StreamingCoresQuery,
    TileQuery,
)

ALL_QUERIES = [
    TileQuery(level=2, n_arrays=3, elem_size=4),
    MatmulTileQuery(level=1, elem_size=8),
    StreamingCoresQuery(group_index=1, efficiency_floor=0.75),
    AggregationQuery(core_a=0, core_b=3, n_messages=16, message_size=4096),
    BcastQuery(placement=(0, 2, 4, 6), nbytes=65536, root=2),
    CommLatencyQuery(core_a=1, core_b=5, nbytes=512),
    CoScheduleQuery(
        workloads=("streaming", "zipf:s=1.3"), seed=5, level=2, instances=2
    ),
    CoScheduleQuery(workloads=("stencil",)),  # None level/instances
]


# -- framing -------------------------------------------------------------


def test_frame_roundtrip():
    payload = {"kind": "ping", "id": 7}
    frame = encode_frame(payload)
    assert read_frame(io.BytesIO(frame).read) == payload


def test_frames_are_canonical_bytes():
    # Identical requests must be identical bytes (coalescing relies on
    # the canonical-JSON convention).
    a = encode_frame({"b": 1, "a": 2})
    b = encode_frame({"a": 2, "b": 1})
    assert a == b


def test_clean_eof_returns_none():
    assert read_frame(io.BytesIO(b"").read) is None


def test_short_length_prefix_rejected():
    with pytest.raises(ServicedError, match="short length prefix"):
        read_frame(io.BytesIO(b"\x00\x00").read)


def test_short_payload_rejected():
    frame = struct.pack(">I", 100) + b'{"truncated'
    with pytest.raises(ServicedError, match="short payload"):
        read_frame(io.BytesIO(frame).read)


def test_oversize_length_prefix_rejected_before_read():
    header = struct.pack(">I", MAX_FRAME + 1)

    def read(n):
        if n == 4:
            return header
        raise AssertionError("must reject before reading the payload")

    with pytest.raises(ServicedError, match="exceeds"):
        read_frame(read)


def test_oversize_body_rejected_on_encode():
    with pytest.raises(ServicedError, match="exceeds"):
        pack_body(b"x" * (MAX_FRAME + 1))


def test_malformed_json_rejected():
    body = b"{nope"
    frame = struct.pack(">I", len(body)) + body
    with pytest.raises(ServicedError, match="malformed frame payload"):
        read_frame(io.BytesIO(frame).read)


def test_non_object_payload_rejected():
    body = json.dumps([1, 2, 3]).encode()
    frame = struct.pack(">I", len(body)) + body
    with pytest.raises(ServicedError, match="must be a JSON object"):
        read_frame(io.BytesIO(frame).read)


# -- query codec ---------------------------------------------------------


@pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: type(q).__name__)
def test_query_codec_roundtrip(query):
    wire = encode_query(query)
    json.dumps(wire)  # must be JSON-serializable as-is
    assert decode_query(wire) == query


def test_decode_coerces_json_types():
    # JSON has no tuples and no int/float distinction a client must
    # respect; the decoder normalizes.
    q = decode_query(
        {"kind": "bcast", "placement": [0, 1], "nbytes": 1024.0, "root": 0}
    )
    assert q == BcastQuery(placement=(0, 1), nbytes=1024, root=0)
    assert isinstance(q.placement, tuple)


def test_decode_applies_defaults():
    assert decode_query({"kind": "tile", "level": 1}) == TileQuery(
        level=1, n_arrays=1, elem_size=8
    )


def test_unknown_kind_rejected():
    with pytest.raises(ServicedError, match="unknown query kind"):
        decode_query({"kind": "warp-factor"})


def test_missing_field_named():
    with pytest.raises(ServicedError, match="needs field"):
        decode_query({"kind": "latency", "core_a": 0, "core_b": 1})


def test_bad_field_named():
    with pytest.raises(ServicedError, match="bad field"):
        decode_query({"kind": "tile", "level": "not-a-number"})


def test_non_dict_query_rejected():
    with pytest.raises(ServicedError, match="JSON object"):
        decode_query("tile")


def test_unencodable_query_rejected():
    with pytest.raises(ServicedError, match="no wire encoding"):
        encode_query(object())


# -- request / response helpers ------------------------------------------


def test_query_request_shape():
    req = query_request(MatmulTileQuery(level=1), 9)
    assert req["kind"] == "query" and req["id"] == 9
    assert req["query"]["kind"] == "matmul-tile"


def test_control_request_rejects_query_kind():
    with pytest.raises(ServicedError, match="not a control request"):
        control_request("query")
    with pytest.raises(ServicedError, match="not a control request"):
        control_request("bogus")


def test_response_helpers():
    assert ok_response(1, version=3) == {"id": 1, "ok": True, "version": 3}
    err = error_response(2, "boom")
    assert err == {"id": 2, "ok": False, "error": "boom"}
