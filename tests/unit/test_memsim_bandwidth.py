"""Unit tests for the max-min fair bandwidth allocator."""

import pytest

from repro.errors import ConfigurationError, MeasurementError
from repro.memsim.bandwidth import allocate_bandwidth, effective_bandwidth_curve
from repro.memsim.stream import stream_copy_bandwidth
from repro.topology import BandwidthDomain, dunnington, finis_terrae_node


def flat_tree(capacity, n_cores):
    return BandwidthDomain("root", capacity, frozenset(range(n_cores)))


class TestAllocate:
    def test_single_core_gets_demand_when_uncontended(self):
        alloc = allocate_bandwidth(flat_tree(10.0, 4), {0: 3.0})
        assert alloc[0] == pytest.approx(3.0)

    def test_saturated_root_splits_equally(self):
        alloc = allocate_bandwidth(flat_tree(4.0, 4), {0: 3.0, 1: 3.0})
        assert alloc[0] == pytest.approx(2.0)
        assert alloc[1] == pytest.approx(2.0)

    def test_unequal_demands_max_min(self):
        # Core 1 only wants 1.0; core 0 should soak up the slack.
        alloc = allocate_bandwidth(flat_tree(4.0, 4), {0: 5.0, 1: 1.0})
        assert alloc[1] == pytest.approx(1.0)
        assert alloc[0] == pytest.approx(3.0)

    def test_never_exceeds_any_domain(self):
        ft = finis_terrae_node()
        alloc = allocate_bandwidth(
            ft.bandwidth_root, {c: ft.core_stream_bw for c in range(16)}
        )
        for domain in ft.bandwidth_root.walk():
            used = sum(alloc[c] for c in domain.cores if c in alloc)
            assert used <= domain.capacity * (1 + 1e-9)

    def test_finis_terrae_pair_structure(self):
        ft = finis_terrae_node()
        demand = ft.core_stream_bw

        def pair_bw(other):
            alloc = allocate_bandwidth(ft.bandwidth_root, {0: demand, other: demand})
            return alloc[0]

        bus = pair_bw(1)
        cell = pair_bw(4)
        cross = pair_bw(8)
        assert bus < cell < cross
        assert cross == pytest.approx(demand)
        assert cell == pytest.approx(0.75 * demand, rel=0.01)  # paper: ~25% loss

    def test_rejects_core_outside_tree(self):
        with pytest.raises(ConfigurationError):
            allocate_bandwidth(flat_tree(4.0, 2), {5: 1.0})

    def test_rejects_nonpositive_demand(self):
        with pytest.raises(ConfigurationError):
            allocate_bandwidth(flat_tree(4.0, 2), {0: 0.0})


class TestEffectiveCurve:
    def test_monotone_nonincreasing(self):
        dn = dunnington()
        curve = effective_bandwidth_curve(
            dn.bandwidth_root, list(range(8)), dn.core_stream_bw
        )
        assert all(a >= b - 1e-9 for a, b in zip(curve, curve[1:]))

    def test_first_point_is_reference(self):
        dn = dunnington()
        curve = effective_bandwidth_curve(
            dn.bandwidth_root, list(range(4)), dn.core_stream_bw
        )
        assert curve[0] == pytest.approx(dn.core_stream_bw)

    def test_rejects_empty_group(self):
        with pytest.raises(ConfigurationError):
            effective_bandwidth_curve(flat_tree(4.0, 2), [], 1.0)


class TestStreamCopy:
    def test_matches_allocator(self):
        ft = finis_terrae_node()
        bw = stream_copy_bandwidth(ft, [0, 1])
        assert bw[0] == pytest.approx(4.6e9 / 2)

    def test_rejects_cache_fitting_arrays(self):
        ft = finis_terrae_node()
        with pytest.raises(MeasurementError):
            stream_copy_bandwidth(ft, [0], array_bytes=1024)

    def test_rejects_duplicate_cores(self):
        ft = finis_terrae_node()
        with pytest.raises(MeasurementError):
            stream_copy_bandwidth(ft, [0, 0])

    def test_rejects_unknown_core(self):
        ft = finis_terrae_node()
        with pytest.raises(MeasurementError):
            stream_copy_bandwidth(ft, [99])
