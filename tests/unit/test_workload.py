"""Unit tests for the workload layer: recorder hook, parsing, advisor edges."""

import pytest

from repro.errors import MeasurementError, WorkloadError
from repro.memsim import Traversal, TraversalEngine, TraversalOutcomeCache
from repro.topology import generic_smp
from repro.units import KiB
from repro.workload import (
    CachePressureModel,
    ReuseProfile,
    TraversalReuseRecorder,
    co_schedule,
    parse_workload,
    profile_workload,
)


def small_machine():
    return generic_smp(
        n_cores=2,
        levels=[("32KB", 8, 1, 3.0), ("1MB", 8, 2, 20.0)],
        mem_latency=200.0,
    )


# -- engine recorder hook -------------------------------------------------


def test_recorded_run_matches_plain_run():
    """Switching the recorder on must not perturb the measurement."""
    machine = small_machine()
    traversals = [Traversal(0, 64 * KiB, 64), Traversal(1, 256 * KiB, 128)]
    plain = TraversalEngine(machine, outcome_cache=None).run(
        traversals, rng=0
    )
    recorder = TraversalReuseRecorder()
    recorded = TraversalEngine(machine, reuse_recorder=recorder).run(
        traversals, rng=0
    )
    assert recorded.cycles_per_access == plain.cycles_per_access
    assert recorded.miss_fraction == plain.miss_fraction


def test_recorder_accumulates_per_core():
    machine = small_machine()
    recorder = TraversalReuseRecorder()
    engine = TraversalEngine(machine, reuse_recorder=recorder)
    engine.run([Traversal(0, 8 * KiB, 64)], rng=0)
    engine.run([Traversal(0, 8 * KiB, 64), Traversal(1, 16 * KiB, 64)], rng=0)
    assert recorder.cores == [0, 1]
    assert recorder.recorder(0).accesses == 2 * (8 * KiB // 64)
    assert recorder.recorder(1).accesses == 16 * KiB // 64
    profile = recorder.profile(0, "traversal-core0")
    assert isinstance(profile, ReuseProfile)
    assert profile.distinct_lines == 8 * KiB // 64
    with pytest.raises(MeasurementError, match="no accesses recorded"):
        recorder.recorder(7)


def test_recorded_run_bypasses_outcome_cache():
    """Recorded runs must replay the stream, not hit the cache.

    A cache hit would skip the traversal walk entirely, so the recorder
    would silently observe nothing; the hook both skips the lookup and
    refuses to populate the cache with recorder-tainted entries.
    """
    machine = small_machine()
    cache = TraversalOutcomeCache()
    traversals = [Traversal(0, 64 * KiB, 64)]
    TraversalEngine(machine, outcome_cache=cache).run(traversals, rng=0)
    assert cache.stats()["entries"] == 1

    recorder = TraversalReuseRecorder()
    engine = TraversalEngine(
        machine, outcome_cache=cache, reuse_recorder=recorder
    )
    before = cache.stats()
    engine.run(traversals, rng=0)
    assert cache.stats() == before  # neither probed nor populated
    assert recorder.recorder(0).accesses == 64 * KiB // 64


# -- spec parsing ---------------------------------------------------------


def test_parse_workload_rejects_unknown_generator():
    with pytest.raises(WorkloadError, match="unknown workload"):
        parse_workload("quantum:lines=4")


def test_parse_workload_rejects_unknown_key():
    with pytest.raises(WorkloadError, match="warp"):
        parse_workload("zipf:warp=9")


def test_parse_workload_rejects_malformed_value():
    with pytest.raises(WorkloadError):
        parse_workload("streaming:lines=many")


def test_parse_workload_canonicalizes_spec():
    a = parse_workload("zipf:s=1.3,lines=512")
    b = parse_workload("zipf:lines=512,s=1.3")
    assert a.spec == b.spec


# -- profile serialization ------------------------------------------------


def test_profile_dict_roundtrip():
    profile = profile_workload("stencil:lines=128,halo=1,sweeps=2", seed=3)
    again = ReuseProfile.from_dict(profile.to_dict())
    assert again == profile


def test_profile_from_dict_rejects_corrupt_mass():
    data = profile_workload("streaming:lines=64,rounds=2", seed=0).to_dict()
    data["cold"] += 1  # breaks cold + sum(counts) == accesses
    with pytest.raises(MeasurementError, match="loses mass"):
        ReuseProfile.from_dict(data)


# -- advisor edges --------------------------------------------------------


def test_co_schedule_rejects_private_level(dunnington_report):
    with pytest.raises(WorkloadError, match="private"):
        co_schedule(dunnington_report, ["streaming"], level=1)


def test_co_schedule_rejects_unknown_level(dunnington_report):
    with pytest.raises(WorkloadError, match="no cache level"):
        co_schedule(dunnington_report, ["streaming"], level=9)


def test_co_schedule_rejects_bad_instances(dunnington_report):
    with pytest.raises(WorkloadError):
        co_schedule(dunnington_report, ["streaming"], level=2, instances=0)
    with pytest.raises(WorkloadError):
        co_schedule(dunnington_report, ["streaming"], level=2, instances=99)


def test_co_schedule_rejects_oversized_mix(dunnington_report):
    mix = [f"zipf:lines={64 + i}" for i in range(11)]  # MAX_WORKLOADS = 10
    with pytest.raises(WorkloadError, match="cap"):
        co_schedule(dunnington_report, mix, level=2)


def test_co_schedule_rejects_empty_and_bad_top(dunnington_report):
    with pytest.raises(WorkloadError):
        co_schedule(dunnington_report, [], level=2)
    with pytest.raises(WorkloadError):
        co_schedule(dunnington_report, ["streaming"], level=2, top=0)


def test_co_schedule_infeasible_mix(dunnington_report):
    # 5 workloads cannot fit 2 instances x 2 cores of L2.
    mix = [f"zipf:lines={64 + i}" for i in range(5)]
    with pytest.raises(WorkloadError):
        co_schedule(dunnington_report, mix, level=2, instances=2)


def test_model_rejects_bad_shape():
    with pytest.raises(WorkloadError):
        CachePressureModel(capacity_lines=0)
    with pytest.raises(WorkloadError):
        CachePressureModel(capacity_lines=64, miss_cycles=0.0)
