"""Unit tests for shared-cache detection (Fig. 5)."""

import pytest

from repro.backends import SimulatedBackend
from repro.core.shared_cache import detect_shared_caches
from repro.errors import MeasurementError
from repro.topology import athlon_3200, dunnington, generic_smp
from repro.units import KiB, MiB


@pytest.fixture(scope="module")
def dunnington_result():
    backend = SimulatedBackend(dunnington(), seed=42)
    return detect_shared_caches(backend, [32 * KiB, 3 * MiB, 12 * MiB])


class TestDunnington(object):
    def test_l1_private(self, dunnington_result):
        assert dunnington_result.shared_pairs[0] == []

    def test_l2_pairs_follow_os_numbering(self, dunnington_result):
        assert dunnington_result.shared_pairs[1] == [
            (c, c + 12) for c in range(12)
        ]

    def test_l3_groups_are_hexacore_sockets(self, dunnington_result):
        assert dunnington_result.sharing_group(0, 3) == [0, 1, 2, 12, 13, 14]
        assert dunnington_result.sharing_group(3, 3) == [3, 4, 5, 15, 16, 17]

    def test_l2_pair_also_detected_at_l3(self, dunnington_result):
        # Fig. 8a: core 12 shows a high ratio at the L3 level too.
        assert (0, 12) in dunnington_result.shared_pairs[2]

    def test_ratios_separate_cleanly(self, dunnington_result):
        ratios = dunnington_result.ratios[1]  # L2 level
        shared = [r for p, r in ratios.items() if p[1] == p[0] + 12]
        private = [r for p, r in ratios.items() if p[1] != p[0] + 12]
        assert min(shared) > 2.0
        assert max(private) < 2.0

    def test_references_recorded(self, dunnington_result):
        assert len(dunnington_result.references) == 3
        assert all(r > 0 for r in dunnington_result.references)


def test_unicore_machine_shares_nothing():
    backend = SimulatedBackend(athlon_3200(), seed=0)
    result = detect_shared_caches(backend, [64 * KiB, 512 * KiB])
    assert result.shared_pairs == [[], []]


def test_shared_l1_is_detected():
    # A hypothetical SMT-style machine where two cores share the L1.
    machine = generic_smp(
        n_cores=4,
        levels=[("32KB", 8, 2, 3.0), ("4MB", 8, 4, 20.0)],
    )
    backend = SimulatedBackend(machine, seed=0)
    result = detect_shared_caches(backend, [32 * KiB, 4 * MiB])
    assert (0, 1) in result.shared_pairs[0]
    assert (0, 2) not in result.shared_pairs[0]


def test_subset_of_cores():
    backend = SimulatedBackend(dunnington(), seed=1)
    result = detect_shared_caches(
        backend, [3 * MiB], cores=[0, 1, 12], reference_core=0
    )
    assert result.shared_pairs[0] == [(0, 12)]


def test_rejects_empty_levels():
    backend = SimulatedBackend(dunnington(), seed=0)
    with pytest.raises(MeasurementError):
        detect_shared_caches(backend, [])
