"""Unit tests for :mod:`repro.topology.machine`."""

import pytest

from repro.errors import ConfigurationError
from repro.topology import (
    BandwidthDomain,
    Cluster,
    dunnington,
    finis_terrae,
    finis_terrae_node,
    generic_smp,
)
from repro.topology.machine import all_pairs, make_pair, partition_by


class TestPairs:
    def test_make_pair_normalizes(self):
        assert make_pair(3, 1) == (1, 3)

    def test_make_pair_rejects_self(self):
        with pytest.raises(ConfigurationError):
            make_pair(2, 2)

    def test_all_pairs_count_and_order(self):
        pairs = all_pairs([2, 0, 1])
        assert pairs == [(0, 1), (0, 2), (1, 2)]

    def test_partition_by(self):
        assert partition_by(range(4), 2) == (
            frozenset({0, 1}),
            frozenset({2, 3}),
        )
        with pytest.raises(ConfigurationError):
            partition_by(range(5), 2)


class TestBandwidthDomain:
    def test_rejects_child_outside_parent(self):
        child = BandwidthDomain("c", 1.0, frozenset({5}))
        with pytest.raises(ConfigurationError):
            BandwidthDomain("p", 2.0, frozenset({0, 1}), (child,))

    def test_rejects_overlapping_children(self):
        c1 = BandwidthDomain("a", 1.0, frozenset({0}))
        c2 = BandwidthDomain("b", 1.0, frozenset({0}))
        with pytest.raises(ConfigurationError):
            BandwidthDomain("p", 2.0, frozenset({0, 1}), (c1, c2))

    def test_domains_of_returns_root_path(self):
        ft = finis_terrae_node()
        path = ft.bandwidth_root.domains_of(0)
        assert [d.name for d in path] == ["node", "cell0", "bus0"]
        path15 = ft.bandwidth_root.domains_of(15)
        assert [d.name for d in path15] == ["node", "cell1", "bus3"]

    def test_walk_visits_all(self):
        ft = finis_terrae_node()
        names = [d.name for d in ft.bandwidth_root.walk()]
        assert len(names) == 1 + 2 + 4


class TestMachineValidation:
    def test_generic_smp_is_valid(self):
        m = generic_smp(n_cores=8, levels=[("32KB", 8, 1, 3.0), ("4MB", 8, 4, 15.0)])
        assert m.n_cores == 8
        assert m.cache_sizes == (32 * 1024, 4 * 1024 * 1024)
        assert m.level(2).shared_by(0, 3)
        assert not m.level(2).shared_by(3, 4)

    def test_levels_must_increase_in_size(self):
        with pytest.raises(ConfigurationError):
            generic_smp(levels=[("32KB", 8, 1, 3.0), ("32KB", 8, 1, 10.0)])

    def test_shared_by_must_divide_cores(self):
        with pytest.raises(ConfigurationError):
            generic_smp(n_cores=4, levels=[("32KB", 8, 3, 3.0)])

    def test_closest_shared_level_picks_minimum(self):
        m = dunnington()
        assert m.closest_shared_level(0, 12) == 2  # shares both L2 and L3
        assert m.closest_shared_level(0, 1) == 3
        assert m.closest_shared_level(0, 3) is None

    def test_shared_level_pairs(self):
        m = dunnington()
        l2_pairs = m.shared_level_pairs(2)
        assert (0, 12) in l2_pairs and len(l2_pairs) == 12
        l3_pairs = m.shared_level_pairs(3)
        assert len(l3_pairs) == 4 * 15  # C(6,2) per socket


class TestCluster:
    def test_global_local_mapping_roundtrip(self):
        ft = finis_terrae(3)
        assert ft.n_cores == 48
        for core in (0, 15, 16, 47):
            node, local = ft.node_of(core), ft.local_core(core)
            assert ft.global_core(node, local) == core

    def test_out_of_range_rejected(self):
        ft = finis_terrae(2)
        with pytest.raises(ConfigurationError):
            ft.node_of(32)
        with pytest.raises(ConfigurationError):
            ft.global_core(2, 0)

    def test_relationships_finis_terrae(self):
        ft = finis_terrae(2)
        assert ft.relationship(0, 1) == "same-cell"
        assert ft.relationship(0, 8) == "same-node"
        assert ft.relationship(0, 16) == "inter-node"
        assert ft.relationships() == {"same-cell", "same-node", "inter-node"}

    def test_relationships_dunnington_single_cell(self):
        dn = Cluster("dunnington", dunnington())
        assert dn.relationship(0, 12) == "shared-l2"
        assert dn.relationship(0, 1) == "shared-l3"
        # One-cell machine: no distinct "same-cell" relationship.
        assert dn.relationship(0, 3) == "same-node"
        assert dn.relationships() == {"shared-l2", "shared-l3", "same-node"}

    def test_relationship_rejects_self(self):
        dn = Cluster("dunnington", dunnington())
        with pytest.raises(ConfigurationError):
            dn.relationship(4, 4)


class TestBuilders:
    def test_dunnington_matches_paper_description(self):
        m = dunnington()
        assert m.n_cores == 24
        assert m.cache_sizes == (32 * 1024, 3 * 1024**2, 12 * 1024**2)
        # Fig. 8a: core 0 shares L2 with core 12, L3 with {1,2,12,13,14}.
        assert m.level(2).group_of(0) == frozenset({0, 12})
        assert m.level(3).group_of(0) == frozenset({0, 1, 2, 12, 13, 14})

    def test_finis_terrae_matches_paper_description(self):
        m = finis_terrae_node()
        assert m.n_cores == 16
        assert m.cache_sizes == (16 * 1024, 256 * 1024, 9 * 1024**2)
        assert all(len(g) == 1 for lvl in m.levels for g in lvl.groups)
        assert len(m.cells) == 2 and len(m.processors) == 8

    def test_summary_smoke(self):
        text = dunnington().summary()
        assert "dunnington" in text and "24 cores" in text
